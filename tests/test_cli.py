"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.nodes == 60 and args.instances == 8


class TestTable1:
    def test_prints_matrix(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Medea" in out and "Kubernetes" in out


class TestParse:
    def test_valid_constraint(self, capsys):
        assert main(["parse", "{storm, {hb & mem, 1, inf}, node}"]) == 0
        out = capsys.readouterr().out
        assert "affinity" in out and "node" in out

    def test_anti_affinity_kind(self, capsys):
        assert main(["parse", "{a, {b, 0, 0}, rack}"]) == 0
        assert "anti-affinity" in capsys.readouterr().out

    def test_invalid_constraint(self, capsys):
        assert main(["parse", "not a constraint"]) == 1
        assert "invalid" in capsys.readouterr().err


class TestCompare:
    def test_small_comparison_runs(self, capsys):
        assert main([
            "compare", "--nodes", "12", "--racks", "2",
            "--instances", "2", "--max-rs-per-node", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "MEDEA-ILP" in out and "YARN" in out
        assert "violations" in out


class TestSimulate:
    def test_short_simulation_runs(self, capsys):
        assert main([
            "simulate", "--nodes", "12", "--horizon", "30",
            "--lras", "1", "--tasks", "10",
        ]) == 0
        out = capsys.readouterr().out
        assert "LRAs placed" in out
        assert "tasks allocated" in out


class TestTraceSampleFlag:
    def test_simulate_with_sampled_mtrc_trace(self, tmp_path, capsys):
        from repro.obs.mtrc import is_mtrc_file
        from repro.obs.report import read_trace
        from repro.obs.trace import set_tracer

        out = tmp_path / "run.mtrc"
        try:
            assert main([
                "simulate", "--nodes", "12", "--horizon", "30",
                "--lras", "1", "--tasks", "20",
                "--trace-out", str(out),
                "--trace-sample", "task=0.5,dispatch=0,seed=3",
            ]) == 0
        finally:
            set_tracer(None)  # drop the CLI-installed ambient tracer
        assert is_mtrc_file(out)
        events = read_trace(str(out)).events
        assert events
        assert all(e["kind"] != "engine.dispatch" for e in events)

    def test_trace_sample_requires_destination(self):
        with pytest.raises(SystemExit, match="trace destination"):
            main(["simulate", "--nodes", "8", "--horizon", "10",
                  "--lras", "0", "--tasks", "0",
                  "--trace-sample", "task=0.5"])

    def test_malformed_sample_spec_exits(self, tmp_path):
        from repro.obs.trace import set_tracer

        try:
            with pytest.raises(SystemExit, match="trace-sample"):
                main(["simulate", "--nodes", "8", "--horizon", "10",
                      "--lras", "0", "--tasks", "0",
                      "--trace-out", str(tmp_path / "t.jsonl"),
                      "--trace-sample", "task=nope"])
        finally:
            set_tracer(None)


class TestTraceToolsOnMtrc:
    @pytest.fixture()
    def mtrc_trace(self, tmp_path):
        """A small simulated trace recorded straight into .mtrc."""
        from repro.obs.trace import set_tracer

        out = tmp_path / "run.mtrc"
        try:
            assert main([
                "simulate", "--nodes", "12", "--horizon", "30",
                "--lras", "1", "--tasks", "20", "--trace-out", str(out),
            ]) == 0
        finally:
            set_tracer(None)
        return out

    def test_trace_report_reads_mtrc(self, mtrc_trace, capsys):
        capsys.readouterr()
        assert main(["trace-report", str(mtrc_trace)]) == 0
        assert "events" in capsys.readouterr().out

    def test_dashboard_reads_mtrc(self, mtrc_trace, tmp_path, capsys):
        json_out = tmp_path / "dash.json"
        assert main(["dashboard", str(mtrc_trace),
                     "--json", str(json_out)]) == 0
        assert "SLO" in capsys.readouterr().out
        import json as _json

        assert _json.loads(json_out.read_text())["series"]

    def test_profile_memory_flag(self, mtrc_trace, capsys):
        assert main(["profile", str(mtrc_trace), "--memory"]) == 0
        out = capsys.readouterr().out
        assert "ingest peak (tracemalloc)" in out
        assert "process peak RSS" in out

    def test_streaming_ingest_memory_is_bounded(self, tmp_path):
        """trace-report must not load the whole file: peak ingest
        allocation stays far below the trace's size (satellite: a
        1M-event JSONL must not be read into memory — scaled down here,
        the bound is what matters)."""
        import json as _json
        import tracemalloc

        from repro.obs.report import iter_trace

        path = tmp_path / "big.jsonl"
        with open(path, "w") as handle:
            for i in range(120_000):
                handle.write(_json.dumps({
                    "kind": "task.allocate", "seq": i, "time": float(i),
                    "data": {"task_id": f"t-{i}", "node_id": f"n-{i % 50}",
                             "mem_mb": 1024},
                }) + "\n")
        file_size = path.stat().st_size
        assert file_size > 10 * 1024 * 1024  # a genuinely big input

        tracemalloc.start()
        count = sum(1 for _ in iter_trace(str(path)))
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert count == 120_000
        assert peak < file_size / 4, (
            f"ingest peak {peak}B vs file {file_size}B — not streaming"
        )


class TestBenchCompareSeries:
    def _doc(self, ratio_value):
        return {
            "schema": 2,
            "benchmarks": {
                "obs:overhead": {
                    "scheduler": "x", "nodes": 1, "apps": 1,
                    "series": {"obs_overhead_ratio": {
                        "t": [0.0], "v": [ratio_value]}},
                    "stats": {"obs_overhead_ratio": {
                        "count": 1, "median": ratio_value,
                        "p95": ratio_value}},
                },
            },
        }

    def test_series_flag_gates_overhead_ratio(self, tmp_path, capsys):
        import json as _json

        baseline = tmp_path / "base.json"
        current = tmp_path / "cur.json"
        baseline.write_text(_json.dumps(self._doc(1.05)))
        current.write_text(_json.dumps(self._doc(1.30)))
        # Not gated by default (obs_overhead_ratio is opt-in)...
        assert main(["bench-compare", str(baseline), str(current)]) == 0
        capsys.readouterr()
        # ...but --series pulls it into the gate, and 1.30 > 1.05*1.05+0.02.
        assert main(["bench-compare", str(baseline), str(current),
                     "--series", "obs_overhead_ratio",
                     "--ratio", "1.05", "--abs-floor", "0.02"]) == 3
        assert "REGRESSED" in capsys.readouterr().out

    def test_committed_obs_baseline_is_usable(self, tmp_path, capsys):
        """The repo's committed overhead baseline loads and gates: a
        within-budget run passes, an over-budget run fails."""
        import json as _json

        baseline = "benchmarks/baselines/BENCH_obs_baseline.json"
        ok = tmp_path / "ok.json"
        ok.write_text(_json.dumps(self._doc(1.04)))
        assert main(["bench-compare", baseline, str(ok),
                     "--series", "obs_overhead_ratio",
                     "--ratio", "1.05", "--abs-floor", "0.02"]) == 0
        bad = tmp_path / "bad.json"
        bad.write_text(_json.dumps(self._doc(1.40)))
        assert main(["bench-compare", baseline, str(bad),
                     "--series", "obs_overhead_ratio",
                     "--ratio", "1.05", "--abs-floor", "0.02"]) == 3
