"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.nodes == 60 and args.instances == 8


class TestTable1:
    def test_prints_matrix(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Medea" in out and "Kubernetes" in out


class TestParse:
    def test_valid_constraint(self, capsys):
        assert main(["parse", "{storm, {hb & mem, 1, inf}, node}"]) == 0
        out = capsys.readouterr().out
        assert "affinity" in out and "node" in out

    def test_anti_affinity_kind(self, capsys):
        assert main(["parse", "{a, {b, 0, 0}, rack}"]) == 0
        assert "anti-affinity" in capsys.readouterr().out

    def test_invalid_constraint(self, capsys):
        assert main(["parse", "not a constraint"]) == 1
        assert "invalid" in capsys.readouterr().err


class TestCompare:
    def test_small_comparison_runs(self, capsys):
        assert main([
            "compare", "--nodes", "12", "--racks", "2",
            "--instances", "2", "--max-rs-per-node", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "MEDEA-ILP" in out and "YARN" in out
        assert "violations" in out


class TestSimulate:
    def test_short_simulation_runs(self, capsys):
        assert main([
            "simulate", "--nodes", "12", "--horizon", "30",
            "--lras", "1", "--tasks", "10",
        ]) == 0
        out = capsys.readouterr().out
        assert "LRAs placed" in out
        assert "tasks allocated" in out
