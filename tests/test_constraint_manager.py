"""Tests for the constraint manager (§3, §6)."""

from __future__ import annotations

import pytest

from repro import (
    CompoundConstraint,
    ConstraintManager,
    affinity,
    anti_affinity,
    cardinality,
)
from repro.core.constraint_manager import ConstraintValidationError
from tests.helpers import make_lra


class TestRegistration:
    def test_register_and_query(self, manager):
        req = make_lra("a", constraints=[affinity("x", "y", "node")])
        manager.register_application(req)
        assert manager.constraints_of("a") == list(req.constraints)
        assert manager.registered_apps() == ["a"]

    def test_register_compound(self, manager):
        comp = CompoundConstraint(((affinity("x", "y"),),))
        req = make_lra("a", compound=[comp])
        manager.register_application(req)
        assert manager.compound_of("a") == [comp]
        assert manager.active_compound_constraints() == [comp]

    def test_unknown_group_rejected(self, manager):
        req = make_lra("a", constraints=[affinity("x", "y", "mystery_group")])
        with pytest.raises(ConstraintValidationError):
            manager.register_application(req)

    def test_unknown_group_in_compound_rejected(self, manager):
        comp = CompoundConstraint(((affinity("x", "y", "mystery"),),))
        req = make_lra("a", compound=[comp])
        with pytest.raises(ConstraintValidationError):
            manager.register_application(req)

    def test_unregister(self, manager):
        req = make_lra("a", constraints=[affinity("x", "y")])
        manager.register_application(req)
        manager.unregister_application("a")
        assert manager.constraints_of("a") == []
        assert manager.active_constraints() == []

    def test_unregister_unknown_is_noop(self, manager):
        manager.unregister_application("ghost")

    def test_active_spans_apps(self, manager):
        a = make_lra("a", constraints=[affinity("x", "y")])
        b = make_lra("b", constraints=[anti_affinity("p", "q")])
        manager.register_application(a)
        manager.register_application(b)
        assert len(manager.active_constraints()) == 2

    def test_iter(self, manager):
        manager.register_application(make_lra("a", constraints=[affinity("x", "y")]))
        assert len(list(manager)) == 1


class TestOperatorConstraints:
    def test_register_operator(self, manager):
        c = cardinality("w", "w", 0, 2, "node", origin="operator")
        manager.register_operator_constraint(c)
        assert manager.operator_constraints() == [c]
        assert c in manager.active_constraints()

    def test_wrong_origin_rejected(self, manager):
        with pytest.raises(ValueError):
            manager.register_operator_constraint(cardinality("w", "w", 0, 2, "node"))

    def test_operator_validates_group(self, manager):
        c = cardinality("w", "w", 0, 2, "nope", origin="operator")
        with pytest.raises(ConstraintValidationError):
            manager.register_operator_constraint(c)

    def test_override_when_more_restrictive(self, manager):
        """§5.2: operator constraints override app constraints on the same
        triple when more restrictive."""
        app_c = cardinality("w", "w", 0, 5, "node")
        op_c = cardinality("w", "w", 0, 2, "node", origin="operator")
        manager.register_application(make_lra("a", constraints=[app_c]))
        manager.register_operator_constraint(op_c)
        active = manager.active_constraints()
        assert op_c in active
        assert app_c not in active

    def test_no_override_when_less_restrictive(self, manager):
        app_c = cardinality("w", "w", 0, 2, "node")
        op_c = cardinality("w", "w", 0, 5, "node", origin="operator")
        manager.register_application(make_lra("a", constraints=[app_c]))
        manager.register_operator_constraint(op_c)
        active = manager.active_constraints()
        assert app_c in active and op_c in active

    def test_no_override_different_subject(self, manager):
        app_c = cardinality("v", "v", 0, 5, "node")
        op_c = cardinality("w", "w", 0, 2, "node", origin="operator")
        manager.register_application(make_lra("a", constraints=[app_c]))
        manager.register_operator_constraint(op_c)
        assert app_c in manager.active_constraints()

    def test_no_override_different_group(self, manager):
        app_c = cardinality("w", "w", 0, 5, "rack")
        op_c = cardinality("w", "w", 0, 2, "node", origin="operator")
        manager.register_application(make_lra("a", constraints=[app_c]))
        manager.register_operator_constraint(op_c)
        assert app_c in manager.active_constraints()
