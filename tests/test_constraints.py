"""Unit tests for the constraint model (paper §4.2)."""

from __future__ import annotations

import pytest

from repro import (
    CompoundConstraint,
    PlacementConstraint,
    TagConstraint,
    TagExpression,
    UNBOUNDED,
    affinity,
    anti_affinity,
    cardinality,
)
from repro.tags import TagMultiset


class TestTagExpression:
    def test_single_tag(self):
        expr = TagExpression("storm")
        assert expr.tags == {"storm"}
        assert expr.matches({"storm", "other"})
        assert not expr.matches({"other"})

    def test_conjunction(self):
        expr = TagExpression(["hb", "mem"])
        assert expr.matches({"hb", "mem", "x"})
        assert not expr.matches({"hb"})

    def test_and_operator(self):
        expr = TagExpression("hb") & TagExpression("mem")
        assert expr.tags == {"hb", "mem"}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TagExpression([])

    def test_invalid_tag_rejected(self):
        with pytest.raises(ValueError):
            TagExpression("bad tag")

    def test_hashable_and_eq(self):
        assert TagExpression(["a", "b"]) == TagExpression(["b", "a"])
        assert len({TagExpression("a"), TagExpression("a")}) == 1

    def test_cardinality_in_multiset(self):
        ms = TagMultiset(["hb", "hb", "mem"])
        assert TagExpression(["hb", "mem"]).cardinality_in(ms) == 1

    def test_repr_sorted(self):
        assert repr(TagExpression(["b", "a"])) == "a ∧ b"


class TestTagConstraint:
    def test_affinity_detection(self):
        assert TagConstraint(TagExpression("x"), 1, UNBOUNDED).is_affinity()
        assert not TagConstraint(TagExpression("x"), 0, 0).is_affinity()

    def test_anti_affinity_detection(self):
        assert TagConstraint(TagExpression("x"), 0, 0).is_anti_affinity()
        assert not TagConstraint(TagExpression("x"), 0, 1).is_anti_affinity()

    def test_satisfaction_interval(self):
        tc = TagConstraint(TagExpression("x"), 2, 5)
        assert not tc.satisfied_by(1)
        assert tc.satisfied_by(2)
        assert tc.satisfied_by(5)
        assert not tc.satisfied_by(6)

    def test_negative_bounds_rejected(self):
        with pytest.raises(ValueError):
            TagConstraint(TagExpression("x"), -1, 2)

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValueError):
            TagConstraint(TagExpression("x"), 3, 2)

    def test_string_coerced_to_expression(self):
        tc = TagConstraint("x", 0, 1)
        assert isinstance(tc.c_tag, TagExpression)

    def test_repr_infinity(self):
        assert "∞" in repr(TagConstraint(TagExpression("x"), 1, UNBOUNDED))


class TestViolationExtent:
    """Eq. 8: relative violation extents."""

    def test_no_violation_zero_extent(self):
        tc = TagConstraint(TagExpression("x"), 1, 3)
        assert tc.violation_extent(2) == 0.0

    def test_min_side_relative(self):
        tc = TagConstraint(TagExpression("x"), 4, UNBOUNDED)
        assert tc.violation_extent(3) == pytest.approx(0.25)
        assert tc.violation_extent(0) == pytest.approx(1.0)

    def test_max_side_relative(self):
        """Paper footnote 3: 10 containers against cmax=5 is a worse
        violation than 6."""
        tc = TagConstraint(TagExpression("x"), 0, 5)
        assert tc.violation_extent(10) == pytest.approx(1.0)
        assert tc.violation_extent(6) == pytest.approx(0.2)
        assert tc.violation_extent(10) > tc.violation_extent(6)

    def test_anti_affinity_raw_slack(self):
        tc = TagConstraint(TagExpression("x"), 0, 0)
        assert tc.violation_extent(1) == pytest.approx(1.0)
        assert tc.violation_extent(3) == pytest.approx(3.0)


class TestPlacementConstraint:
    def test_factory_affinity(self):
        c = affinity("storm", ["hb", "mem"], "node")
        tc = c.tag_constraints[0]
        assert tc.cmin == 1 and tc.cmax == UNBOUNDED
        assert c.node_group == "node"

    def test_factory_anti_affinity(self):
        c = anti_affinity("storm", "hb", "upgrade_domain")
        tc = c.tag_constraints[0]
        assert tc.is_anti_affinity()
        assert c.node_group == "upgrade_domain"

    def test_factory_cardinality(self):
        c = cardinality("storm", "spark", 0, 5, "rack")
        tc = c.tag_constraints[0]
        assert (tc.cmin, tc.cmax) == (0, 5)

    def test_applies_to(self):
        c = affinity(["appID:0023", "storm"], "hb")
        assert c.applies_to({"appID:0023", "storm", "x"})
        assert not c.applies_to({"storm"})

    def test_satisfied_by_multiset(self):
        c = affinity("storm", ["hb", "mem"])
        assert c.satisfied_by_multiset(TagMultiset(["hb", "mem"]))
        assert not c.satisfied_by_multiset(TagMultiset(["hb"]))

    def test_violation_extent_multiset(self):
        c = cardinality("s", "x", 0, 2)
        ms = TagMultiset(["x"] * 4)
        assert c.violation_extent(ms) == pytest.approx(1.0)

    def test_empty_tag_constraints_rejected(self):
        with pytest.raises(ValueError):
            PlacementConstraint(TagExpression("s"), (), "node")

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            affinity("a", "b", "")

    def test_bad_weight_rejected(self):
        with pytest.raises(ValueError):
            affinity("a", "b", weight=0)
        with pytest.raises(ValueError):
            affinity("a", "b", weight=float("inf"))

    def test_bad_origin_rejected(self):
        with pytest.raises(ValueError):
            affinity("a", "b", origin="martian")

    def test_single_tag_constraint_coerced_to_tuple(self):
        c = PlacementConstraint(
            TagExpression("s"), TagConstraint("x", 0, 1), "node"
        )
        assert isinstance(c.tag_constraints, tuple)
        assert len(c.tag_constraints) == 1

    def test_intra_application_detection(self):
        intra = cardinality("spark", "spark", 3, 10, "rack")
        inter = cardinality("storm", "spark", 0, 5, "rack")
        assert intra.is_intra_application()
        assert not inter.is_intra_application()

    def test_hashable(self):
        assert len({affinity("a", "b"), affinity("a", "b")}) == 1

    def test_hard_flag(self):
        assert anti_affinity("a", "b", hard=True).hard


class TestCompoundConstraint:
    def test_dnf_structure(self):
        c1, c2 = affinity("a", "b"), anti_affinity("a", "c")
        comp = CompoundConstraint(((c1,), (c2,)))
        assert len(comp.conjuncts) == 2
        assert set(comp.all_constraints()) == {c1, c2}

    def test_subjects(self):
        comp = CompoundConstraint(((affinity("a", "b"),),))
        assert TagExpression("a") in comp.subjects()

    def test_empty_dnf_rejected(self):
        with pytest.raises(ValueError):
            CompoundConstraint(())

    def test_empty_conjunct_rejected(self):
        with pytest.raises(ValueError):
            CompoundConstraint(((),))

    def test_bad_weight_rejected(self):
        with pytest.raises(ValueError):
            CompoundConstraint(((affinity("a", "b"),),), weight=-1)


class TestPaperExamples:
    """The four worked examples of §4.2."""

    def test_caf_storm_hbase_memcached(self):
        caf = affinity("storm", ["hb", "mem"], "node")
        assert caf.applies_to({"storm"})
        assert caf.satisfied_by_multiset(TagMultiset(["hb", "mem", "storm"]))

    def test_caa_upgrade_domain(self):
        caa = anti_affinity("storm", "hb", "upgrade_domain")
        assert not caa.satisfied_by_multiset(TagMultiset(["hb"]))
        assert caa.satisfied_by_multiset(TagMultiset(["spark"]))

    def test_cca_rack_spark_limit(self):
        cca = cardinality("storm", "spark", 0, 5, "rack")
        assert cca.satisfied_by_multiset(TagMultiset(["spark"] * 5))
        assert not cca.satisfied_by_multiset(TagMultiset(["spark"] * 6))

    def test_ccg_group_self_constraint(self):
        ccg = cardinality("spark", "spark", 3, 10, "rack")
        assert ccg.applies_to({"spark"})
        assert not ccg.satisfied_by_multiset(TagMultiset(["spark"] * 2))
        assert ccg.satisfied_by_multiset(TagMultiset(["spark"] * 5))
