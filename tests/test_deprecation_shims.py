"""Tests for the relocation deprecation shims.

The old import paths stay alive as pure warn-once shims:
``repro.solver.SolverStats`` (moved to ``repro.obs``), the
``repro.metrics.stats`` helpers (moved to ``repro.obs.stats``), the
``repro.metrics.violations`` auditors (moved to ``repro.obs.violations``),
and the ``repro.metrics`` package itself, which forwards every moved name.
Each access must emit exactly one :class:`DeprecationWarning` naming the
new location and forward to the very same object, and non-moved attribute
names must still raise :class:`AttributeError` rather than warn.
"""

from __future__ import annotations

import warnings

import pytest


def _single_deprecation(record, needle: str):
    """Assert exactly one DeprecationWarning mentioning ``needle``."""
    deprecations = [
        w for w in record if issubclass(w.category, DeprecationWarning)
    ]
    assert len(deprecations) == 1, (
        f"expected exactly one DeprecationWarning, got {len(deprecations)}: "
        f"{[str(w.message) for w in deprecations]}"
    )
    assert needle in str(deprecations[0].message)


class TestSolverStatsAlias:
    def test_access_warns_once_and_forwards(self):
        import repro.solver as solver_pkg
        from repro.obs.metrics import SolverStats as canonical

        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            aliased = solver_pkg.SolverStats
        _single_deprecation(record, "repro.obs.SolverStats")
        assert aliased is canonical

    def test_aliased_class_is_usable(self):
        import repro.solver as solver_pkg

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            stats = solver_pkg.SolverStats(backend="bnb")
        assert stats.backend == "bnb"

    def test_unknown_attribute_raises_without_warning(self):
        import repro.solver as solver_pkg

        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            with pytest.raises(AttributeError, match="NoSuchThing"):
                solver_pkg.NoSuchThing
        assert record == []


class TestMetricsStatsShim:
    @pytest.mark.parametrize("name", [
        "BoxStats",
        "EmptyDataError",
        "percentile",
        "cdf_points",
        "coefficient_of_variation",
    ])
    def test_each_name_warns_once_and_forwards(self, name):
        import repro.metrics.stats as old
        import repro.obs.stats as new

        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            forwarded = getattr(old, name)
        _single_deprecation(record, "repro.obs.stats")
        assert forwarded is getattr(new, name)

    def test_unknown_attribute_raises_without_warning(self):
        import repro.metrics.stats as old

        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            with pytest.raises(AttributeError, match="NoSuchHelper"):
                old.NoSuchHelper
        assert record == []

    def test_dir_advertises_moved_names(self):
        import repro.metrics.stats as old

        listed = dir(old)
        for name in ("BoxStats", "percentile", "cdf_points"):
            assert name in listed


class TestMetricsViolationsShim:
    @pytest.mark.parametrize("name", [
        "ViolationRecord",
        "ViolationReport",
        "evaluate_violations",
    ])
    def test_each_name_warns_once_and_forwards(self, name):
        import repro.metrics.violations as old
        import repro.obs.violations as new

        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            forwarded = getattr(old, name)
        _single_deprecation(record, "repro.obs.violations")
        assert forwarded is getattr(new, name)

    def test_unknown_attribute_raises_without_warning(self):
        import repro.metrics.violations as old

        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            with pytest.raises(AttributeError, match="NoSuchAuditor"):
                old.NoSuchAuditor
        assert record == []


class TestMetricsPackageShim:
    @pytest.mark.parametrize("name,new_home", [
        ("BoxStats", "repro.obs.stats"),
        ("EmptyDataError", "repro.obs.stats"),
        ("percentile", "repro.obs.stats"),
        ("cdf_points", "repro.obs.stats"),
        ("coefficient_of_variation", "repro.obs.stats"),
        ("ViolationRecord", "repro.obs.violations"),
        ("ViolationReport", "repro.obs.violations"),
        ("evaluate_violations", "repro.obs.violations"),
    ])
    def test_each_name_warns_once_and_forwards(self, name, new_home):
        import importlib

        import repro.metrics as old

        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            forwarded = getattr(old, name)
        _single_deprecation(record, new_home)
        assert forwarded is getattr(importlib.import_module(new_home), name)

    def test_unknown_attribute_raises_without_warning(self):
        import repro.metrics as old

        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            with pytest.raises(AttributeError, match="NoSuchMetric"):
                old.NoSuchMetric
        assert record == []

    def test_dir_advertises_moved_names(self):
        import repro.metrics as old

        listed = dir(old)
        for name in ("BoxStats", "evaluate_violations", "ViolationReport"):
            assert name in listed

    def test_repro_package_reexports_without_warning(self):
        """The supported spellings (``repro.BoxStats`` etc.) must not warn."""
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            import repro

            repro.BoxStats
            repro.evaluate_violations
        assert [w for w in record
                if issubclass(w.category, DeprecationWarning)] == []
