"""Tests for the PR-2/PR-3 deprecation shims.

Two relocation shims keep old import paths alive: ``repro.solver.SolverStats``
(moved to ``repro.obs``) and the ``repro.metrics.stats`` helpers (moved to
``repro.obs.stats``).  Each access must emit exactly one
:class:`DeprecationWarning` naming the new location and forward to the very
same object, and non-moved attribute names must still raise
:class:`AttributeError` rather than warn.
"""

from __future__ import annotations

import warnings

import pytest


def _single_deprecation(record, needle: str):
    """Assert exactly one DeprecationWarning mentioning ``needle``."""
    deprecations = [
        w for w in record if issubclass(w.category, DeprecationWarning)
    ]
    assert len(deprecations) == 1, (
        f"expected exactly one DeprecationWarning, got {len(deprecations)}: "
        f"{[str(w.message) for w in deprecations]}"
    )
    assert needle in str(deprecations[0].message)


class TestSolverStatsAlias:
    def test_access_warns_once_and_forwards(self):
        import repro.solver as solver_pkg
        from repro.obs.metrics import SolverStats as canonical

        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            aliased = solver_pkg.SolverStats
        _single_deprecation(record, "repro.obs.SolverStats")
        assert aliased is canonical

    def test_aliased_class_is_usable(self):
        import repro.solver as solver_pkg

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            stats = solver_pkg.SolverStats(backend="bnb")
        assert stats.backend == "bnb"

    def test_unknown_attribute_raises_without_warning(self):
        import repro.solver as solver_pkg

        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            with pytest.raises(AttributeError, match="NoSuchThing"):
                solver_pkg.NoSuchThing
        assert record == []


class TestMetricsStatsShim:
    @pytest.mark.parametrize("name", [
        "BoxStats",
        "EmptyDataError",
        "percentile",
        "cdf_points",
        "coefficient_of_variation",
    ])
    def test_each_name_warns_once_and_forwards(self, name):
        import repro.metrics.stats as old
        import repro.obs.stats as new

        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            forwarded = getattr(old, name)
        _single_deprecation(record, "repro.obs.stats")
        assert forwarded is getattr(new, name)

    def test_unknown_attribute_raises_without_warning(self):
        import repro.metrics.stats as old

        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            with pytest.raises(AttributeError, match="NoSuchHelper"):
                old.NoSuchHelper
        assert record == []

    def test_dir_advertises_moved_names(self):
        import repro.metrics.stats as old

        listed = dir(old)
        for name in ("BoxStats", "percentile", "cdf_points"):
            assert name in listed
