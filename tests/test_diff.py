"""Cross-run differential observability: ``repro.obs.diff`` + ``repro diff``.

Covers the diff plane's contract end to end: the backend × engine
same-seed equivalence matrix, first-divergence localization, causal
placement-flip explanations from decision audits, the INCOMPARABLE
guard rails, exit-code semantics, artifact outputs, and the
trace-convert canonical round trip the diff relies on.
"""

from __future__ import annotations

import json

import pytest

from repro import NodeCandidatesScheduler, SerialScheduler, build_cluster
from repro.apps import hbase_instance, tensorflow_instance
from repro.cli import EXIT_DATA_ERROR, EXIT_GATE, EXIT_OK, main
from repro.obs import (
    STRUCTURAL_KINDS,
    VERDICT_DIVERGED,
    VERDICT_EQUIVALENT,
    VERDICT_IDENTICAL,
    VERDICT_INCOMPARABLE,
    MemorySink,
    MtrcSink,
    Tracer,
    diff_events,
    diff_rollups,
    diff_traces,
    render_diff,
    render_diff_html,
    set_tracer,
)
from repro.obs.metrics import Metrics, set_metrics
from repro.obs.sample import SamplingPolicy, TraceSampler
from repro.sim import ClusterSimulation, SimConfig
from repro.workloads import GridMixConfig, generate_tasks


@pytest.fixture
def isolate_obs():
    prev_tracer = set_tracer(None)
    prev_metrics = set_metrics(Metrics())
    yield
    set_tracer(prev_tracer)
    set_metrics(prev_metrics)


def _run_events(
    *,
    seed: int = 5,
    engine: str = "periodic",
    backend: str | None = None,
    scheduler=None,
    audit: bool = False,
    horizon: float = 40.0,
    sample: str | None = None,
):
    """Run a small mixed workload and return the decoded trace objects."""
    sink = MemorySink()
    sampler = TraceSampler(SamplingPolicy.parse(sample)) if sample else None
    tracer = Tracer([sink], sampler=sampler)
    scheduler = scheduler or NodeCandidatesScheduler()
    if audit:
        scheduler.audit_enabled = True
    topo = build_cluster(10, racks=2, memory_mb=16 * 1024, vcores=8)
    sim = ClusterSimulation(
        topo,
        scheduler,
        config=SimConfig(
            scheduling_interval_s=5.0, horizon_s=horizon,
            engine=engine, backend=backend,
        ),
        tracer=tracer,
        metrics=Metrics(),
    )
    sim.submit_lra(hbase_instance("lra-0"), at=2.0)
    sim.submit_lra(tensorflow_instance("lra-1"), at=9.0)
    for arrival, task in generate_tasks(GridMixConfig(seed=seed), count=20):
        if arrival < horizon:
            sim.submit_task(task, at=arrival)
    sim.run(horizon)
    tracer.close()
    return [e.to_obj() for e in sink.events]


class TestVerdicts:
    def test_same_stream_is_identical(self):
        events = _run_events()
        report = diff_events(events, events)
        assert report.verdict == VERDICT_IDENTICAL
        assert report.ok and report.comparable
        assert report.headline() == "IDENTICAL"
        assert not report.flips

    @pytest.mark.parametrize("engine_b,backend_b", [
        ("ondemand", None),
        ("periodic", "array"),
        ("ondemand", "array"),
    ])
    def test_same_seed_matrix_is_equivalent(self, engine_b, backend_b):
        """The determinism contract: same seed, any engine × backend combo
        makes the same decisions — only cadence differs."""
        a = _run_events(engine="periodic", backend="object")
        b = _run_events(engine=engine_b, backend=backend_b)
        report = diff_events(a, b, label_a="periodic/object",
                             label_b=f"{engine_b}/{backend_b or 'object'}")
        assert report.verdict in (VERDICT_IDENTICAL, VERDICT_EQUIVALENT)
        assert report.ok
        assert report.placements["flipped"] == 0
        assert report.checkpoints["final_match"]
        assert report.checkpoints["mismatched"] == 0

    def test_different_seed_diverges_with_localization(self):
        a = _run_events(seed=5)
        b = _run_events(seed=6)
        report = diff_events(a, b)
        assert report.verdict == VERDICT_DIVERGED
        assert not report.ok
        assert report.tick is not None
        assert report.headline().startswith("DIVERGED@")
        div = report.divergence
        assert div is not None
        # The first divergent pair is concrete: canonical events, a reason,
        # and each side's following structural context.
        assert div.a is not None and div.b is not None
        assert div.reason
        assert div.after_a or div.after_b

    def test_scheduler_flip_explained_from_audit(self):
        a = _run_events(scheduler=NodeCandidatesScheduler(), audit=True)
        b = _run_events(scheduler=SerialScheduler(), audit=True)
        report = diff_events(a, b, label_a="nc", label_b="serial")
        assert report.verdict == VERDICT_DIVERGED
        assert report.placements["flipped"] > 0
        assert report.flips
        # At least one flip carries a causal explanation derived from the
        # recorded scheduler.audit payloads.
        explained = [f for f in report.flips if f.explanation]
        assert explained
        text = "\n".join(line for f in explained for line in f.explanation)
        assert ("pruned" in text or "score terms" in text
                or "candidate" in text or "upstream decision" in text)

    def test_empty_side_is_incomparable(self):
        events = _run_events()
        report = diff_events([], events)
        assert report.verdict == VERDICT_INCOMPARABLE
        assert not report.ok and not report.comparable

    def test_disjoint_structural_kinds_are_incomparable(self):
        a = [{"kind": "lra.submit", "seq": 0, "time": 1.0,
              "data": {"app_id": "x", "containers": 1, "constraints": 0}}]
        b = [{"kind": "task.submit", "seq": 0, "time": 1.0,
              "data": {"task_id": "t", "queue": "default"}}]
        report = diff_events(a, b)
        assert report.verdict == VERDICT_INCOMPARABLE
        assert "no shared structural" in report.reason

    def test_structural_tail_imbalance_diverges(self):
        events = _run_events()
        structural = [e for e in events if e["kind"] in STRUCTURAL_KINDS]
        assert len(structural) > 3
        report = diff_events(events, events[:-len(events) // 4])
        assert report.verdict == VERDICT_DIVERGED
        assert "ended after" in report.divergence.reason

    def test_checkpoint_mismatch_alone_diverges(self):
        base = [
            {"kind": "lra.submit", "seq": 0, "time": 1.0,
             "data": {"app_id": "x", "containers": 1, "constraints": 0}},
        ]
        a = base + [{"kind": "sim.state_hash", "seq": 1, "time": 2.0,
                     "data": {"hash": "aaaa"}}]
        b = base + [{"kind": "sim.state_hash", "seq": 1, "time": 2.0,
                     "data": {"hash": "bbbb"}}]
        report = diff_events(a, b)
        assert report.verdict == VERDICT_DIVERGED
        assert report.tick == 2.0
        assert "fingerprints disagree" in report.reason


class TestRenderers:
    def test_render_diff_terminal(self):
        a = _run_events(seed=5, audit=True)
        b = _run_events(seed=6, audit=True)
        report = diff_events(a, b, label_a="A", label_b="B")
        text = render_diff(report)
        assert "verdict: DIVERGED@" in text
        assert "first divergent structural event" in text
        assert "A >" in text and "B >" in text

    def test_render_diff_html_self_contained(self):
        a = _run_events(seed=5, audit=True)
        b = _run_events(seed=6, audit=True)
        html = render_diff_html(diff_events(a, b))
        assert html.lstrip().startswith("<!DOCTYPE html>")
        assert "badge fail" in html
        assert "<style>" in html and "http" not in html.split("<style>")[1].split("</style>")[0]

    def test_report_to_obj_round_trips_json(self):
        a = _run_events(seed=5)
        b = _run_events(seed=6)
        obj = diff_events(a, b).to_obj()
        encoded = json.dumps(obj, sort_keys=True)
        assert json.loads(encoded)["verdict"] == VERDICT_DIVERGED
        assert json.loads(encoded)["divergence"]["reason"]


class TestDiffTraces:
    def _write_jsonl(self, path, events):
        with open(path, "w", encoding="utf-8") as handle:
            for obj in events:
                handle.write(json.dumps(obj, sort_keys=True) + "\n")
        return str(path)

    def _write_mtrc(self, path, events):
        sink = MtrcSink(str(path))
        for obj in events:
            sink.append_obj(obj)
        sink.close()
        return str(path)

    def test_jsonl_vs_mtrc_same_run_identical(self, tmp_path):
        events = _run_events()
        a = self._write_jsonl(tmp_path / "a.jsonl", events)
        b = self._write_mtrc(tmp_path / "b.mtrc", events)
        report = diff_traces(a, b)
        assert report.verdict == VERDICT_IDENTICAL

    def test_rollup_vs_trace_incomparable(self, tmp_path, isolate_obs):
        events = _run_events()
        trace = self._write_jsonl(tmp_path / "a.jsonl", events)
        rollup = tmp_path / "roll.json"
        assert main([
            "simulate", "--nodes", "10", "--horizon", "30",
            "--lras", "1", "--tasks", "5", "--scheduler", "nc",
            "--rollup", str(rollup),
        ]) == EXIT_OK
        report = diff_traces(str(rollup), trace)
        assert report.verdict == VERDICT_INCOMPARABLE
        assert "rollup" in report.reason


class TestDiffRollups:
    def _doc(self, value):
        return {
            "schema": "medea.rollup/1",
            "rollup": {"interval_s": 1.0},
            "meta": {"events": 10},
            "series": {"containers": {
                "mean": value, "max": value, "last": value,
                "points": [[0.0, value]],
            }},
            "profile": {"spans": {}},
            "wall": {"series": {}},
        }

    def test_equal_docs_identical(self):
        report = diff_rollups(self._doc(3.0), self._doc(3.0))
        assert report.verdict == VERDICT_IDENTICAL

    def test_deterministic_delta_diverges_with_tick(self):
        report = diff_rollups(self._doc(3.0), self._doc(4.0))
        assert report.verdict == VERDICT_DIVERGED
        assert report.tick == 0.0
        assert "containers" in report.reason


class TestCliDiff:
    def _trace(self, tmp_path, name, *, seed, isolate=None):
        events = _run_events(seed=seed)
        path = tmp_path / name
        with open(path, "w", encoding="utf-8") as handle:
            for obj in events:
                handle.write(json.dumps(obj, sort_keys=True) + "\n")
        return str(path)

    def test_equivalent_exits_zero(self, tmp_path, capsys):
        a = self._trace(tmp_path, "a.jsonl", seed=5)
        b = self._trace(tmp_path, "b.jsonl", seed=5)
        assert main(["diff", a, b, "--fail-on-divergence"]) == EXIT_OK
        assert "verdict: IDENTICAL" in capsys.readouterr().out

    def test_divergence_gates_with_exit_3(self, tmp_path, capsys):
        a = self._trace(tmp_path, "a.jsonl", seed=5)
        b = self._trace(tmp_path, "b.jsonl", seed=6)
        assert main(["diff", a, b]) == EXIT_OK
        capsys.readouterr()
        assert main(["diff", a, b, "--fail-on-divergence"]) == EXIT_GATE
        captured = capsys.readouterr()
        assert "failing on DIVERGED@" in captured.err

    def test_missing_file_is_data_error(self, tmp_path, capsys):
        a = self._trace(tmp_path, "a.jsonl", seed=5)
        assert main(["diff", a, str(tmp_path / "nope.jsonl")]) == EXIT_DATA_ERROR
        assert "diff:" in capsys.readouterr().err

    def test_json_and_html_artifacts(self, tmp_path, capsys):
        a = self._trace(tmp_path, "a.jsonl", seed=5)
        b = self._trace(tmp_path, "b.jsonl", seed=6)
        json_out = tmp_path / "diff.json"
        html_out = tmp_path / "diff.html"
        assert main([
            "diff", a, b, "--json", str(json_out), "--html", str(html_out),
        ]) == EXIT_OK
        doc = json.loads(json_out.read_text())
        assert doc["verdict"] == VERDICT_DIVERGED
        assert doc["headline"].startswith("DIVERGED@")
        # --json output is byte-stable: sorted keys, fixed indentation.
        assert json_out.read_text() == json.dumps(
            doc, indent=2, sort_keys=True
        ) + "\n"
        assert html_out.read_text().lstrip().startswith("<!DOCTYPE html>")

    def test_compare_diff_prints_pairwise_forensics(self, capsys, isolate_obs):
        assert main([
            "compare", "--nodes", "10", "--instances", "2", "--diff",
        ]) == EXIT_OK
        out = capsys.readouterr().out
        assert "pairwise placement diff vs MEDEA-ILP" in out
        assert "DIVERGED@" in out or "EQUIVALENT" in out or "IDENTICAL" in out


class TestTraceConvertRoundTrip:
    """JSONL → .mtrc → JSONL preserves the canonical event stream
    byte-identically — the identity the diff plane's IDENTICAL verdict
    and the determinism contract are stated over."""

    def _canonical_lines(self, path):
        from repro.obs.report import iter_trace

        return [
            json.dumps({k: v for k, v in obj.items() if k != "wall"},
                       sort_keys=True, separators=(",", ":"))
            for obj in iter_trace(path)
        ]

    def _round_trip(self, tmp_path, events):
        src = tmp_path / "src.jsonl"
        with open(src, "w", encoding="utf-8") as handle:
            for obj in events:
                handle.write(json.dumps(obj, sort_keys=True) + "\n")
        mid = tmp_path / "mid.mtrc"
        back = tmp_path / "back.jsonl"
        assert main(["trace-convert", str(src), str(mid)]) == EXIT_OK
        assert main(["trace-convert", str(mid), str(back)]) == EXIT_OK
        return str(src), str(back)

    def test_full_trace_round_trips_canonically(self, tmp_path, capsys):
        events = _run_events()
        src, back = self._round_trip(tmp_path, events)
        assert self._canonical_lines(src) == self._canonical_lines(back)
        report = diff_traces(src, back)
        assert report.verdict == VERDICT_IDENTICAL

    def test_sampled_trace_round_trips_with_sampled_hash(self, tmp_path, capsys):
        events = _run_events(sample="heartbeat=0.25,task=0.5,seed=7")
        hashes = [e for e in events if e["kind"] == "sim.state_hash"]
        assert hashes and any("sampled_hash" in e["data"] for e in hashes)
        src, back = self._round_trip(tmp_path, events)
        assert self._canonical_lines(src) == self._canonical_lines(back)
        from repro.obs.report import iter_trace

        round_tripped = [
            obj for obj in iter_trace(back) if obj["kind"] == "sim.state_hash"
        ]
        assert any("sampled_hash" in e["data"] for e in round_tripped)


class TestJsonStability:
    """Satellite: machine-readable outputs are byte-stable (sorted keys),
    so two invocations over the same inputs diff clean."""

    def test_dashboard_json_is_sorted_and_stable(self, tmp_path, capsys,
                                                 isolate_obs):
        trace = tmp_path / "t.jsonl"
        assert main([
            "simulate", "--nodes", "10", "--horizon", "30", "--lras", "1",
            "--tasks", "5", "--scheduler", "nc", "--trace-out", str(trace),
        ]) == EXIT_OK
        set_tracer(None)
        out1 = tmp_path / "d1.json"
        out2 = tmp_path / "d2.json"
        assert main(["dashboard", str(trace), "--json", str(out1)]) == EXIT_OK
        assert main(["dashboard", str(trace), "--json", str(out2)]) == EXIT_OK
        text = out1.read_text()
        assert text == out2.read_text()
        doc = json.loads(text)
        assert text == json.dumps(doc, indent=2, sort_keys=True) + "\n"

    def test_rollup_file_is_sorted(self, tmp_path, capsys, isolate_obs):
        rollup = tmp_path / "roll.json"
        assert main([
            "simulate", "--nodes", "10", "--horizon", "30", "--lras", "1",
            "--tasks", "5", "--scheduler", "nc", "--rollup", str(rollup),
        ]) == EXIT_OK
        text = rollup.read_text()
        doc = json.loads(text)
        assert doc["schema"] == "medea.rollup/1"
        # Compact, sorted, newline-terminated — byte-stable across flushes.
        assert text == json.dumps(doc, sort_keys=True) + "\n"
