"""Tests for the paper-notation constraint parser."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import UNBOUNDED, affinity, anti_affinity, cardinality
from repro.core.dsl import (
    ConstraintSyntaxError,
    format_constraint,
    parse_constraint,
)


class TestPaperExamples:
    """Every worked example from §4.2, verbatim."""

    def test_caf(self):
        c = parse_constraint("{storm, {hb ∧ mem, 1, ∞}, node}")
        assert c == affinity("storm", ["hb", "mem"], "node")

    def test_caf_prime_with_app_ids(self):
        c = parse_constraint(
            "Caf = {appID:0023 ∧ storm, {appID:0023 ∧ hb ∧ mem, 1, ∞}, node}"
        )
        assert c.subject.tags == {"appID:0023", "storm"}
        tc = c.tag_constraints[0]
        assert tc.c_tag.tags == {"appID:0023", "hb", "mem"}
        assert tc.cmin == 1 and tc.cmax == UNBOUNDED

    def test_caa(self):
        c = parse_constraint("{storm, {hb, 0, 0}, upgrade_domain}")
        assert c == anti_affinity("storm", "hb", "upgrade_domain")

    def test_cca(self):
        c = parse_constraint("{storm, {spark, 0, 5}, rack}")
        assert c == cardinality("storm", "spark", 0, 5, "rack")

    def test_ccg(self):
        c = parse_constraint("{spark, {spark, 3, 10}, rack}")
        assert c == cardinality("spark", "spark", 3, 10, "rack")


class TestAsciiConveniences:
    def test_ampersand_conjunction(self):
        c = parse_constraint("{storm, {hb & mem, 1, inf}, node}")
        assert c == affinity("storm", ["hb", "mem"], "node")

    @pytest.mark.parametrize("token", ["inf", "Infinity", "*", "∞"])
    def test_infinity_tokens(self, token):
        c = parse_constraint(f"{{a, {{b, 1, {token}}}, node}}")
        assert c.tag_constraints[0].cmax == UNBOUNDED

    def test_multiple_tag_constraints(self):
        c = parse_constraint("{w, {cache, 1, inf} and {noisy, 0, 0}, node}")
        assert len(c.tag_constraints) == 2
        assert c.tag_constraints[0].is_affinity()
        assert c.tag_constraints[1].is_anti_affinity()

    def test_options_passed_through(self):
        c = parse_constraint(
            "{a, {b, 0, 0}, node}", weight=2.5, hard=True, origin="operator"
        )
        assert c.weight == 2.5 and c.hard and c.origin == "operator"


class TestErrors:
    @pytest.mark.parametrize("text", [
        "storm, {hb, 1, 2}, node",        # no outer braces
        "{storm, node}",                   # missing tag constraint
        "{storm, {hb, 1}, node}",          # missing cmax
        "{storm, {hb, one, 2}, node}",     # non-numeric bound
        "{storm, {hb, inf, 2}, node}",     # infinite cmin
        "{storm, {hb, 3, 2}, node}",       # cmin > cmax
        "{storm, {hb, 1, 2}, }",           # empty group
        "{, {hb, 1, 2}, node}",            # empty subject
        "{storm, {hb, 1, 2, node}",        # unbalanced braces
        "{a ∧ , {hb, 1, 2}, node}",        # empty conjunct
    ])
    def test_rejected(self, text):
        with pytest.raises(ConstraintSyntaxError):
            parse_constraint(text)


class TestRoundTrip:
    @pytest.mark.parametrize("constraint", [
        affinity("storm", ["hb", "mem"], "node"),
        anti_affinity("hb_m", "hb_sec", "node"),
        cardinality("spark", "spark", 3, 10, "rack"),
        cardinality(["appID:7", "w"], ["appID:8", "w"], 0, 2, "upgrade_domain"),
    ])
    def test_format_parse_identity(self, constraint):
        assert parse_constraint(format_constraint(constraint)) == constraint

    tag = st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True)

    @settings(max_examples=40, deadline=None)
    @given(
        subject=st.sets(tag, min_size=1, max_size=3),
        target=st.sets(tag, min_size=1, max_size=3),
        cmin=st.integers(0, 5),
        span=st.integers(0, 5),
        unbounded=st.booleans(),
    )
    def test_round_trip_property(self, subject, target, cmin, span, unbounded):
        from repro import PlacementConstraint, TagConstraint, TagExpression

        cmax = UNBOUNDED if unbounded else cmin + span
        constraint = PlacementConstraint(
            TagExpression(subject),
            (TagConstraint(TagExpression(target), cmin, cmax),),
            "node",
        )
        assert parse_constraint(format_constraint(constraint)) == constraint
