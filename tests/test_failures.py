"""Tests for the unavailability trace generator and placement replay."""

from __future__ import annotations

import statistics

import pytest

from repro import ClusterState, Resource, build_cluster
from repro.failures import (
    TraceConfig,
    generate_trace,
    max_unavailability_series,
    replay_trace,
    su_distribution,
)


class TestTraceGenerator:
    def test_shape(self):
        trace = generate_trace(service_units=5, hours=48, seed=1)
        assert trace.service_units == 5 and trace.hours == 48
        assert len(trace.fractions) == 48
        assert all(len(row) == 5 for row in trace.fractions)
        assert all(0 <= f <= 1 for row in trace.fractions for f in row)

    def test_deterministic_by_seed(self):
        a = generate_trace(4, 24, seed=7)
        b = generate_trace(4, 24, seed=7)
        assert a.fractions == b.fractions

    def test_baseline_mostly_below_3pct(self):
        """Fig. 3 invariant (i): unavailability usually below 3%."""
        trace = generate_trace(25, 15 * 24, seed=0)
        all_values = [f for row in trace.fractions for f in row]
        below = sum(1 for f in all_values if f <= 0.03)
        assert below / len(all_values) > 0.8

    def test_spikes_occur(self):
        """Fig. 3 invariant (ii): spikes to 25%+ happen."""
        trace = generate_trace(25, 15 * 24, seed=0)
        assert any(f >= 0.25 for row in trace.fractions for f in row)

    def test_units_fail_asynchronously(self):
        """Fig. 3 invariant (iii): when one unit spikes, the total stays
        far lower."""
        trace = generate_trace(25, 15 * 24, seed=0)
        for hour, row in enumerate(trace.fractions):
            if max(row) >= 0.5:
                assert trace.total(hour) < max(row) / 2
                break
        else:
            pytest.fail("expected at least one severe spike in 15 days")

    def test_total_weighted_by_sizes(self):
        trace = generate_trace(2, 1, seed=3, unit_sizes=[90, 10])
        expected = 0.9 * trace.fraction(0, 0) + 0.1 * trace.fraction(0, 1)
        assert trace.total(0) == pytest.approx(expected)

    def test_series_accessors(self):
        trace = generate_trace(3, 10, seed=2)
        assert len(trace.series_for_unit(1)) == 10
        assert len(trace.total_series()) == 10

    def test_bad_args(self):
        with pytest.raises(ValueError):
            generate_trace(0, 10)
        with pytest.raises(ValueError):
            generate_trace(2, 10, unit_sizes=[1])


class TestReplay:
    def test_su_distribution(self):
        topo = build_cluster(8, service_units=4)
        state = ClusterState(topo)
        # Two containers in SU0 (nodes 0-1), one in SU3 (nodes 6-7).
        state.allocate("a/0", "n00000", Resource(1024, 1), ("w",), "a")
        state.allocate("a/1", "n00001", Resource(1024, 1), ("w",), "a")
        state.allocate("a/2", "n00007", Resource(1024, 1), ("w",), "a")
        dist = su_distribution(state, "a")
        assert dist == {0: 2, 3: 1}

    def test_su_distribution_requires_group(self):
        state = ClusterState(build_cluster(2))  # no service_unit group
        state.allocate("a/0", "n00000", Resource(1024, 1), ("w",), "a")
        with pytest.raises(KeyError):
            su_distribution(state, "a")

    def test_replay_math(self):
        trace = generate_trace(2, 2, seed=1)
        series = replay_trace({"a": {0: 3, 1: 1}}, trace)["a"]
        for hour in range(2):
            expected = (3 * trace.fraction(hour, 0) + trace.fraction(hour, 1)) / 4
            assert series[hour] == pytest.approx(expected)

    def test_empty_app_rejected(self):
        trace = generate_trace(2, 2)
        with pytest.raises(ValueError):
            replay_trace({"a": {}}, trace)

    def test_max_series_takes_worst_app(self):
        trace = generate_trace(2, 3, seed=5)
        per_app = replay_trace({"a": {0: 1}, "b": {1: 1}}, trace)
        combined = max_unavailability_series({"a": {0: 1}, "b": {1: 1}}, trace)
        for hour in range(3):
            assert combined[hour] == max(per_app["a"][hour], per_app["b"][hour])

    def test_spread_placement_dampens_worst_case(self):
        """The §7.3 mechanism: spreading across units lowers the max
        unavailability CDF versus concentrating in one unit."""
        trace = generate_trace(10, 200, seed=4)
        spread = {f"app{i}": {su: 10 for su in range(10)} for i in range(5)}
        concentrated = {f"app{i}": {i % 10: 100} for i in range(5)}
        spread_series = max_unavailability_series(spread, trace)
        conc_series = max_unavailability_series(concentrated, trace)
        assert statistics.mean(spread_series) < statistics.mean(conc_series)
        assert max(spread_series) <= max(conc_series)
