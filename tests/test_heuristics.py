"""Tests for the greedy heuristic schedulers and the YARN baseline (§5.3)."""

from __future__ import annotations

import pytest

from repro import (
    ClusterState,
    ConstraintManager,
    ConstraintUnawareScheduler,
    ContainerRequest,
    LRARequest,
    NodeCandidatesScheduler,
    Resource,
    SerialScheduler,
    TagPopularityScheduler,
    affinity,
    anti_affinity,
    build_cluster,
    cardinality,
    evaluate_violations,
)
from tests.helpers import make_lra, place_all

ALL_HEURISTICS = [
    SerialScheduler,
    TagPopularityScheduler,
    NodeCandidatesScheduler,
]


def build(num_nodes=8, racks=2, mem=8 * 1024):
    topo = build_cluster(num_nodes, racks=racks, memory_mb=mem, vcores=8)
    return topo, ClusterState(topo), ConstraintManager(topo)


@pytest.mark.parametrize("scheduler_cls", ALL_HEURISTICS)
class TestGreedyCommon:
    def test_places_everything_when_easy(self, scheduler_cls):
        _, state, manager = build()
        result = scheduler_cls().place([make_lra(containers=4)], state, manager)
        assert len(result.placements) == 4
        assert result.rejected_apps == []

    def test_state_left_pristine(self, scheduler_cls):
        """Schedulers must roll back their tentative allocations."""
        topo, state, manager = build()
        scheduler_cls().place([make_lra(containers=4)], state, manager)
        assert len(state.containers) == 0
        assert all(node.free == node.capacity for node in topo)

    def test_respects_capacity(self, scheduler_cls):
        topo = build_cluster(2, memory_mb=2 * 1024, vcores=2)
        state, manager = ClusterState(topo), ConstraintManager(topo)
        req = make_lra("fit", containers=4, memory_mb=1024, vcores=1)
        result = scheduler_cls().place([req], state, manager)
        assert len(result.placements) == 4
        per_node: dict[str, int] = {}
        for p in result.placements:
            per_node[p.node_id] = per_node.get(p.node_id, 0) + 1
        assert max(per_node.values()) <= 2

    def test_all_or_nothing_rejection(self, scheduler_cls):
        topo = build_cluster(1, memory_mb=2 * 1024, vcores=2)
        state, manager = ClusterState(topo), ConstraintManager(topo)
        req = make_lra("nofit", containers=4, memory_mb=1024, vcores=1)
        result = scheduler_cls().place([req], state, manager)
        assert result.rejected_apps == ["nofit"]
        assert result.placements == []
        assert len(state.containers) == 0

    def test_honours_anti_affinity_when_room(self, scheduler_cls):
        _, state, manager = build()
        req = make_lra(
            "aa", containers=4, tags={"w"},
            constraints=[anti_affinity("w", "w", "node")],
        )
        result = scheduler_cls().place([req], state, manager)
        nodes = [p.node_id for p in result.placements]
        assert len(set(nodes)) == 4

    def test_honours_affinity(self, scheduler_cls):
        _, state, manager = build()
        mem = LRARequest(
            "mc", [ContainerRequest("mc/0", Resource(1024, 1), frozenset({"mem"}))]
        )
        storm = make_lra(
            "st", containers=2, tags={"storm"},
            constraints=[affinity("storm", "mem", "node")],
        )
        result = scheduler_cls().place([mem, storm], state, manager)
        place_all(state, result)
        report = evaluate_violations(state, manager=manager)
        # mem has no constraints; storm containers should be collocated
        # with mem when processed after it.
        assert report.violating_containers == 0

    def test_empty_batch(self, scheduler_cls):
        _, state, manager = build()
        assert len(scheduler_cls().place([], state, manager)) == 0

    def test_respects_deployed_constraints(self, scheduler_cls):
        _, state, manager = build(num_nodes=4)
        old = make_lra(
            "old", containers=1, tags={"quiet"},
            constraints=[anti_affinity("quiet", "loud", "node")],
        )
        manager.register_application(old)
        state.allocate("old/c0", "n00000", Resource(1024, 1),
                       ("quiet", "appID:old"), "old")
        new = make_lra("new", containers=2, tags={"loud"})
        result = scheduler_cls().place([new], state, manager)
        assert all(p.node_id != "n00000" for p in result.placements)


class TestTagPopularityOrdering:
    def test_popular_tags_first(self):
        """Containers whose tags appear in more constraints are ordered
        ahead of unconstrained ones."""
        _, state, manager = build()
        scheduler = TagPopularityScheduler()
        popular = make_lra(
            "pop", containers=1, tags={"hot"},
            constraints=[
                anti_affinity("hot", "hot", "node"),
                cardinality("hot", "cold", 0, 1, "rack"),
            ],
        )
        boring = make_lra("boring", containers=1, tags={"plain"})
        constraints = popular.constraints
        items = scheduler.order_containers(
            [boring, popular], list(constraints), state
        )
        first_tags = items[0][1].tags
        assert "hot" in first_tags


class TestNodeCandidatesOrdering:
    def test_least_flexible_first(self):
        """The container with fewer violation-free nodes is placed first."""
        topo, state, manager = build(num_nodes=4)
        # 'picky' can only go next to the existing cache container.
        state.allocate("cache/0", "n00000", Resource(1024, 1), ("cache",), "c")
        picky = LRARequest(
            "picky",
            [ContainerRequest("picky/0", Resource(1024, 1), frozenset({"p"}))],
            [affinity("p", "cache", "node")],
        )
        easy = make_lra("easy", containers=1, tags={"e"})
        scheduler = NodeCandidatesScheduler()
        result = scheduler.place([easy, picky], state, manager)
        # picky must end up on n00000 regardless of submission order.
        picky_node = next(
            p.node_id for p in result.placements if p.app_id == "picky"
        )
        assert picky_node == "n00000"

    def test_cache_cleared_between_runs(self):
        _, state, manager = build()
        scheduler = NodeCandidatesScheduler()
        scheduler.place([make_lra(containers=2)], state, manager)
        assert scheduler._candidates == {}
        assert scheduler._pending == []

    def test_incremental_candidates_match_recomputation(self):
        """After each placement, the incrementally maintained candidate
        sets must equal a from-scratch recomputation."""
        topo, state, manager = build(num_nodes=6)
        scheduler = NodeCandidatesScheduler()
        reqs = [
            make_lra("i1", containers=3, tags={"w"},
                     constraints=[anti_affinity("w", "w", "node")]),
            make_lra("i2", containers=2, tags={"w"},
                     constraints=[cardinality("w", "w", 0, 1, "rack")]),
        ]
        for r in reqs:
            manager.register_application(r)

        checked = []
        placed_ids: set[str] = set()
        original_after = scheduler.after_placement

        def checking_after(container, node_id):
            original_after(container, node_id)
            placed_ids.add(container.container_id)
            for _, other in scheduler._pending:
                if other.container_id in placed_ids:
                    continue  # already placed: its own tags are in the state
                cached = scheduler._candidates.get(other.container_id)
                if cached is None:
                    continue
                fresh = scheduler._compute_candidates(other)
                assert cached == fresh, (
                    f"stale candidates for {other.container_id}"
                )
                checked.append(other.container_id)

        scheduler.after_placement = checking_after
        scheduler.place(reqs, state, manager)
        assert checked, "expected incremental updates to be exercised"

    def test_candidate_count_reflects_constraints(self):
        topo, state, manager = build(num_nodes=4)
        state.allocate("cache/0", "n00000", Resource(1024, 1), ("cache",), "c")
        picky = LRARequest(
            "picky",
            [ContainerRequest("picky/0", Resource(1024, 1), frozenset({"p"}))],
            [affinity("p", "cache", "node")],
        )
        scheduler = NodeCandidatesScheduler()
        scheduler._state = state
        scheduler._constraints = list(picky.constraints)
        try:
            candidates = scheduler._compute_candidates(picky.containers[0])
        finally:
            scheduler._state = None
        assert candidates == {"n00000"}


class TestSerialBehaviour:
    def test_submission_order_preserved(self):
        _, state, manager = build()
        scheduler = SerialScheduler()
        a = make_lra("a", containers=2)
        b = make_lra("b", containers=2)
        items = scheduler.order_containers([a, b], [], state)
        assert [i for i, _ in items] == [0, 0, 1, 1]


class TestYarnBaseline:
    def test_ignores_constraints(self):
        """YARN places by capacity only; with a seed forcing collocation
        pressure the anti-affinity is (at least sometimes) violated."""
        topo = build_cluster(2, memory_mb=8 * 1024, vcores=8)
        state, manager = ClusterState(topo), ConstraintManager(topo)
        req = make_lra(
            "y", containers=4, tags={"w"},
            constraints=[anti_affinity("w", "w", "node")],
        )
        manager.register_application(req)
        result = ConstraintUnawareScheduler(seed=1).place([req], state, manager)
        assert len(result.placements) == 4  # capacity is fine
        per_node: dict[str, int] = {}
        for p in result.placements:
            per_node[p.node_id] = per_node.get(p.node_id, 0) + 1
        # 4 containers on 2 nodes: some node must hold >= 2 -> violation.
        assert max(per_node.values()) >= 2

    def test_deterministic_given_seed(self):
        _, state, manager = build()
        req = make_lra("d", containers=3)
        r1 = ConstraintUnawareScheduler(seed=42).place([req], state, manager)
        r2 = ConstraintUnawareScheduler(seed=42).place([req], state, manager)
        assert [p.node_id for p in r1.placements] == [p.node_id for p in r2.placements]

    def test_rejects_when_full(self):
        topo = build_cluster(1, memory_mb=1024, vcores=1)
        state, manager = ClusterState(topo), ConstraintManager(topo)
        req = make_lra("f", containers=2, memory_mb=1024, vcores=1)
        result = ConstraintUnawareScheduler().place([req], state, manager)
        assert result.rejected_apps == ["f"]
        assert len(state.containers) == 0
