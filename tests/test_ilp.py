"""Semantics tests for the Fig. 5 ILP formulation.

Each test builds a small cluster, submits LRAs with constraints, solves with
the ILP scheduler, applies the placements, and then audits the *resulting
cluster state* with the independent brute-force checker
(:func:`repro.obs.violations.evaluate_violations`) — so the encoding is validated
against the constraint semantics, not against itself.
"""

from __future__ import annotations

import pytest

from repro import (
    ClusterState,
    CompoundConstraint,
    ConstraintManager,
    ContainerRequest,
    IlpScheduler,
    IlpWeights,
    LRARequest,
    Resource,
    UNBOUNDED,
    affinity,
    anti_affinity,
    build_cluster,
    cardinality,
    evaluate_violations,
)
from repro.core.ilp import IlpFormulation
from repro.solver import solve

from tests.helpers import make_lra, place_all


def build(num_nodes=8, racks=2, **kw):
    topo = build_cluster(num_nodes, racks=racks, memory_mb=8 * 1024, vcores=8, **kw)
    return topo, ClusterState(topo), ConstraintManager(topo)


def schedule(requests, state, manager, **kw):
    for request in requests:
        manager.register_application(request)
    return IlpScheduler(**kw).place(requests, state, manager)


class TestBasicPlacement:
    def test_places_all_containers(self):
        _, state, manager = build()
        result = schedule([make_lra("a", containers=4)], state, manager)
        assert len(result.placements) == 4
        assert result.rejected_apps == []

    def test_empty_batch(self):
        _, state, manager = build()
        assert len(IlpScheduler().place([], state, manager)) == 0

    def test_respects_capacity(self):
        """6 containers of 4 GB on two 8 GB nodes -> only one 2-container
        app fits per node; an 8 GB/container app can hold at most 2."""
        topo = build_cluster(2, memory_mb=8 * 1024, vcores=8)
        state, manager = ClusterState(topo), ConstraintManager(topo)
        req = make_lra("big", containers=4, memory_mb=4 * 1024)
        result = schedule([req], state, manager)
        place_all(state, result)
        for node in topo:
            assert node.free.memory_mb >= 0

    def test_all_or_nothing(self):
        """An app that cannot fully fit is fully rejected (Eq. 4)."""
        topo = build_cluster(1, memory_mb=4 * 1024, vcores=8)
        state, manager = ClusterState(topo), ConstraintManager(topo)
        req = make_lra("toobig", containers=5, memory_mb=1024, vcores=2)
        result = schedule([req], state, manager)
        assert result.rejected_apps == ["toobig"]
        assert result.placements == []

    def test_partial_batch(self):
        """With room for only one app, exactly one is placed, whole."""
        topo = build_cluster(1, memory_mb=4 * 1024, vcores=4)
        state, manager = ClusterState(topo), ConstraintManager(topo)
        a = make_lra("a", containers=3, memory_mb=1024)
        b = make_lra("b", containers=3, memory_mb=1024)
        result = schedule([a, b], state, manager)
        placed_apps = result.placed_apps()
        assert len(placed_apps) == 1
        assert len(result.placements) == 3
        assert len(result.rejected_apps) == 1

    def test_each_container_once(self):
        _, state, manager = build()
        result = schedule([make_lra("a", containers=6)], state, manager)
        ids = [p.container_id for p in result.placements]
        assert len(ids) == len(set(ids))

    def test_unavailable_nodes_skipped(self):
        topo = build_cluster(3, memory_mb=8 * 1024)
        for node_id in ("n00000", "n00001"):
            topo.node(node_id).available = False
        state, manager = ClusterState(topo), ConstraintManager(topo)
        result = schedule([make_lra("a", containers=2)], state, manager)
        assert all(p.node_id == "n00002" for p in result.placements)


class TestConstraintSemantics:
    def test_node_affinity(self):
        _, state, manager = build()
        req = LRARequest(
            "aff",
            [
                ContainerRequest("aff/m", Resource(1024, 1), frozenset({"m"})),
                ContainerRequest("aff/t", Resource(1024, 1), frozenset({"t"})),
            ],
            [affinity("m", "t", "node")],
        )
        result = schedule([req], state, manager)
        nodes = {p.container_id: p.node_id for p in result.placements}
        assert nodes["aff/m"] == nodes["aff/t"]

    def test_node_anti_affinity(self):
        _, state, manager = build()
        req = make_lra(
            "anti", containers=4, tags={"w"},
            constraints=[anti_affinity("w", "w", "node")],
        )
        result = schedule([req], state, manager)
        nodes = [p.node_id for p in result.placements]
        assert len(set(nodes)) == 4

    def test_cardinality_cap(self):
        """<= 2 workers per node (cmax=1 on the others)."""
        _, state, manager = build(num_nodes=4)
        req = make_lra(
            "card", containers=6, tags={"w"},
            constraints=[cardinality("w", "w", 0, 1, "node")],
        )
        result = schedule([req], state, manager)
        place_all(state, result)
        report = evaluate_violations(state, manager=manager)
        assert report.violating_containers == 0
        per_node: dict[str, int] = {}
        for p in result.placements:
            per_node[p.node_id] = per_node.get(p.node_id, 0) + 1
        assert max(per_node.values()) <= 2

    def test_rack_affinity_all_together(self):
        _, state, manager = build(num_nodes=8, racks=2)
        req = make_lra(
            "rackaff", containers=4, tags={"w"},
            constraints=[
                cardinality("w", "w", 3, UNBOUNDED, "rack"),
            ],
        )
        result = schedule([req], state, manager)
        racks = {state.topology.node(p.node_id).rack for p in result.placements}
        assert len(racks) == 1

    def test_inter_application_affinity(self):
        """Paper example Caf: storm containers next to hb ∧ mem."""
        _, state, manager = build()
        hbase = LRARequest(
            "hb1",
            [ContainerRequest("hb1/c", Resource(1024, 1), frozenset({"hb", "mem"}))],
        )
        storm = make_lra(
            "storm1", containers=2, tags={"storm"},
            constraints=[affinity("storm", ["hb", "mem"], "node")],
        )
        result = schedule([hbase, storm], state, manager)
        place_all(state, result)
        report = evaluate_violations(state, manager=manager)
        assert report.violating_containers == 0
        hb_node = next(p.node_id for p in result.placements if p.app_id == "hb1")
        storm_nodes = {p.node_id for p in result.placements if p.app_id == "storm1"}
        assert storm_nodes == {hb_node}

    def test_constraint_of_deployed_lra_respected(self):
        """New containers must not violate an already-deployed LRA's
        anti-affinity."""
        _, state, manager = build(num_nodes=3)
        first = make_lra(
            "old", containers=1, tags={"sensitive"},
            constraints=[anti_affinity("sensitive", "noisy", "node")],
        )
        result = schedule([first], state, manager)
        place_all(state, result)
        old_node = result.placements[0].node_id

        second = make_lra("new", containers=2, tags={"noisy"})
        result2 = schedule([second], state, manager)
        place_all(state, result2)
        assert all(p.node_id != old_node for p in result2.placements)
        report = evaluate_violations(state, manager=manager)
        assert report.violating_containers == 0

    def test_conjunction_tag_constraints(self):
        """A constraint whose conjunction has two tag constraints."""
        from repro import PlacementConstraint, TagConstraint, TagExpression

        _, state, manager = build()
        c = PlacementConstraint(
            TagExpression("w"),
            (
                TagConstraint(TagExpression("cache"), 1, UNBOUNDED),
                TagConstraint(TagExpression("noisy"), 0, 0),
            ),
            "node",
        )
        cache = LRARequest(
            "cache1",
            [ContainerRequest("cache1/c", Resource(1024, 1), frozenset({"cache"}))],
        )
        noisy = LRARequest(
            "noisy1",
            [ContainerRequest("noisy1/c", Resource(1024, 1), frozenset({"noisy"}))],
        )
        app = make_lra("app", containers=2, tags={"w"}, constraints=[c])
        result = schedule([cache, noisy, app], state, manager)
        place_all(state, result)
        report = evaluate_violations(state, manager=manager)
        assert report.violating_containers == 0


class TestViolationMinimisation:
    def test_soft_constraints_allow_placement(self):
        """When anti-affinity cannot hold (1 node), the app still places —
        soft semantics — but violations are reported."""
        topo = build_cluster(1, memory_mb=8 * 1024, vcores=8)
        state, manager = ClusterState(topo), ConstraintManager(topo)
        req = make_lra(
            "soft", containers=3, tags={"w"},
            constraints=[anti_affinity("w", "w", "node")],
        )
        result = schedule([req], state, manager)
        assert len(result.placements) == 3
        place_all(state, result)
        report = evaluate_violations(state, manager=manager)
        assert report.violating_containers == 3

    def test_minimal_extent_chosen(self):
        """cmax violations are spread to minimise total extent: 4 workers,
        2 nodes, cap 1/node -> 2+2 beats 3+1."""
        topo = build_cluster(2, memory_mb=8 * 1024, vcores=8)
        state, manager = ClusterState(topo), ConstraintManager(topo)
        req = make_lra(
            "spread", containers=4, tags={"w"},
            constraints=[anti_affinity("w", "w", "node")],
        )
        result = schedule([req], state, manager)
        per_node: dict[str, int] = {}
        for p in result.placements:
            per_node[p.node_id] = per_node.get(p.node_id, 0) + 1
        assert sorted(per_node.values()) == [2, 2]

    def test_weights_prioritise_placement_over_violations(self):
        """With w1 >> w2, placing an app that must violate still wins."""
        topo = build_cluster(1, memory_mb=8 * 1024, vcores=8)
        state, manager = ClusterState(topo), ConstraintManager(topo)
        req = make_lra(
            "v", containers=2, tags={"w"},
            constraints=[anti_affinity("w", "w", "node")],
        )
        result = schedule(
            [req], state, manager,
            weights=IlpWeights(w1_placement=1.0, w2_violations=0.5),
        )
        assert len(result.placements) == 2

    def test_huge_violation_weight_rejects_app(self):
        """With w2 >> w1, the solver prefers not placing the app at all to
        violating its anti-affinity (hard-constraint emulation, §4.2)."""
        topo = build_cluster(1, memory_mb=8 * 1024, vcores=8)
        state, manager = ClusterState(topo), ConstraintManager(topo)
        req = make_lra(
            "r", containers=2, tags={"w"},
            constraints=[anti_affinity("w", "w", "node", hard=True)],
        )
        result = schedule(
            [req], state, manager,
            weights=IlpWeights(w1_placement=1.0, w2_violations=10.0),
        )
        assert result.rejected_apps == ["r"]


class TestFragmentation:
    def test_avoids_fragmenting_loaded_node(self):
        """n00000 already carries 5 GB (3 GB free): putting anything there
        drops it below the 2 GB rmin threshold (z=0).  Both containers must
        land on the empty node, keeping both z indicators at 1 (Eq. 5)."""
        topo = build_cluster(2, memory_mb=8 * 1024, vcores=8)
        state, manager = ClusterState(topo), ConstraintManager(topo)
        state.allocate("bg", "n00000", Resource(5 * 1024, 1), ("task",), "bg")
        req = make_lra("frag", containers=2, memory_mb=1536)
        result = schedule(
            [req], state, manager,
            weights=IlpWeights(w1_placement=1.0, w2_violations=0.5,
                               w3_fragmentation=0.25),
        )
        assert {p.node_id for p in result.placements} == {"n00001"}

    def test_machines_used_objective(self):
        """Optional w4: minimise machines used packs onto one node."""
        topo = build_cluster(4, memory_mb=8 * 1024, vcores=8)
        state, manager = ClusterState(topo), ConstraintManager(topo)
        req = make_lra("pack", containers=3, memory_mb=1024)
        result = schedule(
            [req], state, manager,
            weights=IlpWeights(w3_fragmentation=0.0, w4_machines=0.5),
        )
        assert len({p.node_id for p in result.placements}) == 1


class TestCompoundConstraints:
    def test_satisfiable_conjunct_chosen(self):
        """DNF (node affinity to cache) OR (rack affinity to cache): when
        the node is full, the rack conjunct must be satisfied instead."""
        topo = build_cluster(4, racks=2, memory_mb=2 * 1024, vcores=2)
        state, manager = ClusterState(topo), ConstraintManager(topo)
        # Cache occupies almost all of n00000: no room for the worker there.
        state.allocate("cache/c", "n00000", Resource(1536, 1), ("cache",), "cache")
        dnf = CompoundConstraint(
            (
                (affinity("w", "cache", "node"),),
                (affinity("w", "cache", "rack"),),
            )
        )
        req = LRARequest(
            "comp",
            [ContainerRequest("comp/w", Resource(1024, 1), frozenset({"w"}))],
            compound_constraints=[dnf],
        )
        result = schedule([req], state, manager)
        assert len(result.placements) == 1
        node = result.placements[0].node_id
        assert node != "n00000"
        assert state.topology.node(node).rack == state.topology.node("n00000").rack

    def test_first_conjunct_when_possible(self):
        topo = build_cluster(4, racks=2, memory_mb=8 * 1024, vcores=8)
        state, manager = ClusterState(topo), ConstraintManager(topo)
        state.allocate("cache/c", "n00001", Resource(1024, 1), ("cache",), "cache")
        dnf = CompoundConstraint(
            (
                (affinity("w", "cache", "node"),),
                (affinity("w", "cache", "rack"),),
            )
        )
        req = LRARequest(
            "comp2",
            [ContainerRequest("comp2/w", Resource(1024, 1), frozenset({"w"}))],
            compound_constraints=[dnf],
        )
        result = schedule([req], state, manager)
        # Either conjunct satisfies the DNF; no violation either way.
        place_all(state, result)
        report = evaluate_violations(state, manager=manager)
        assert report.violating_containers == 0


class TestOperatorConstraints:
    def test_operator_override_more_restrictive(self):
        _, state, manager = build()
        app_constraint = cardinality("w", "w", 0, 5, "node")
        op_constraint = cardinality("w", "w", 0, 1, "node", origin="operator")
        manager.register_operator_constraint(op_constraint)
        req = make_lra("op", containers=4, tags={"w"}, constraints=[app_constraint])
        result = schedule([req], state, manager)
        per_node: dict[str, int] = {}
        for p in result.placements:
            per_node[p.node_id] = per_node.get(p.node_id, 0) + 1
        assert max(per_node.values()) <= 2  # operator cap of <=1 other


class TestFormulationInternals:
    def test_model_always_feasible(self):
        """Even absurd constraints keep the model feasible (soft slacks)."""
        _, state, manager = build(num_nodes=2)
        req = make_lra(
            "x", containers=2, tags={"w"},
            constraints=[cardinality("w", "w", 50, UNBOUNDED, "node")],
        )
        manager.register_application(req)
        formulation = IlpFormulation([req], state, manager)
        formulation.build()
        solution = solve(formulation.model)
        assert solution.status.has_solution()

    def test_extract_raises_on_inconsistent_solution(self):
        _, state, manager = build(num_nodes=2)
        req = make_lra("y", containers=1)
        manager.register_application(req)
        formulation = IlpFormulation([req], state, manager)
        formulation.build()
        solution = solve(formulation.model)
        # Corrupt: claim S=1 but zero out the X variables.
        values = list(solution.values)
        for (i, j, n), var in formulation.x_vars.items():
            values[var] = 0.0
        values[formulation.s_vars[0]] = 1.0
        from repro.solver import MilpSolution, SolveStatus

        fake = MilpSolution(SolveStatus.OPTIMAL, 0.0, tuple(values))
        with pytest.raises(RuntimeError):
            formulation.extract(fake)

    def test_violations_diagnostics(self):
        topo = build_cluster(1, memory_mb=8 * 1024, vcores=8)
        state, manager = ClusterState(topo), ConstraintManager(topo)
        req = make_lra(
            "d", containers=2, tags={"w"},
            constraints=[anti_affinity("w", "w", "node")],
        )
        manager.register_application(req)
        formulation = IlpFormulation([req], state, manager)
        formulation.build()
        solution = solve(formulation.model)
        violations = formulation.violations(solution)
        assert violations, "expected the forced anti-affinity violation to be reported"

    def test_backend_parity(self):
        results = []
        for backend in ("highs", "bnb"):
            _, state, manager = build(num_nodes=4)
            req = make_lra(
                "p", containers=3, tags={"w"},
                constraints=[anti_affinity("w", "w", "node")],
            )
            result = schedule([req], state, manager, backend=backend)
            place_all(state, result)
            report = evaluate_violations(state, manager=manager)
            results.append((len(result.placements), report.violating_containers))
        assert results[0] == results[1]
