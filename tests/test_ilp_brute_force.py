"""Brute-force validation of the ILP encoding on tiny instances.

For randomly generated micro-clusters and micro-apps, enumerate *every*
feasible assignment of containers to nodes and check two properties:

1. **Completeness** — whenever some assignment satisfies all constraints
   and capacities, the ILP places the app with zero violations.
2. **Soundness** — the ILP's own placements never violate capacity, and
   its violation audit agrees with the independent checker.

This guards the Fig. 5 encoding (big-D activation, self-exclusion, slack
normalisation) against silent drift.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro import (
    ClusterState,
    ConstraintManager,
    IlpScheduler,
    Resource,
    build_cluster,
    evaluate_violations,
)
from repro.core.constraints import (
    UNBOUNDED,
    PlacementConstraint,
    affinity,
    anti_affinity,
    cardinality,
)
from tests.helpers import make_lra, place_all


def random_instance(seed: int):
    """A tiny cluster plus one app with 2-4 containers and 1-2 constraints."""
    rng = random.Random(seed)
    num_nodes = rng.randint(2, 4)
    topo = build_cluster(
        num_nodes, racks=rng.choice([1, 2]), memory_mb=4 * 1024, vcores=4
    )
    state = ClusterState(topo)
    # Optionally pre-place an 'anchor' container other constraints refer to.
    if rng.random() < 0.5:
        anchor_node = rng.choice(topo.node_ids())
        state.allocate("anchor", anchor_node, Resource(1024, 1), ("anchor",), "x")
    n_containers = rng.randint(2, 4)
    constraint_pool = [
        anti_affinity("w", "w", "node"),
        cardinality("w", "w", 0, 1, "node"),
        affinity("w", "anchor", "node"),
        cardinality("w", "w", 0, 2, "rack"),
        affinity("w", "w", "rack"),
    ]
    constraints = rng.sample(constraint_pool, k=rng.randint(1, 2))
    app = make_lra(
        f"bf-{seed}", containers=n_containers, tags={"w"},
        constraints=constraints, memory_mb=1024, vcores=1,
    )
    return topo, state, app


def assignment_satisfies(state, app, nodes_choice) -> bool:
    """Apply an assignment, audit it, roll back; True if fully clean."""
    placed = []
    try:
        for container, node_id in zip(app.containers, nodes_choice):
            node = state.topology.node(node_id)
            if not node.can_fit(container.resource):
                return False
            state.allocate(
                container.container_id, node_id, container.resource,
                container.tags, app.app_id,
            )
            placed.append(container.container_id)
        report = evaluate_violations(state, list(app.constraints))
        return report.violating_containers == 0
    finally:
        for cid in placed:
            state.release(cid)


def exists_clean_assignment(state, app) -> bool:
    node_ids = state.topology.node_ids()
    for choice in itertools.product(node_ids, repeat=len(app.containers)):
        if assignment_satisfies(state, app, choice):
            return True
    return False


@pytest.mark.parametrize("seed", range(20))
def test_ilp_finds_clean_placement_when_one_exists(seed):
    topo, state, app = random_instance(seed)
    manager = ConstraintManager(topo)
    manager.register_application(app)
    clean_exists = exists_clean_assignment(state, app)

    result = IlpScheduler().place([app], state, manager)
    place_all(state, result)
    report = evaluate_violations(state, manager=manager)

    if clean_exists:
        assert len(result.placements) == len(app.containers), (
            f"seed {seed}: clean assignment exists but app was rejected"
        )
        assert report.violating_containers == 0, (
            f"seed {seed}: ILP produced violations although a clean "
            f"assignment exists: {[ (r.container_id, r.constraint) for r in report.records ]}"
        )
    # Soundness either way: capacities hold.
    for node in topo:
        assert node.free.memory_mb >= 0 and node.free.vcores >= 0
