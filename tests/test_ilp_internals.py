"""White-box tests for IlpFormulation internals (big-D bounds, slack
normalisation, grounding bookkeeping)."""

from __future__ import annotations

import pytest

from repro import (
    ClusterState,
    ConstraintManager,
    Resource,
    UNBOUNDED,
    affinity,
    anti_affinity,
    build_cluster,
    cardinality,
)
from repro.core.constraints import TagConstraint, TagExpression
from repro.core.ilp import IlpFormulation, IlpWeights
from tests.helpers import make_lra


def formulation(requests, state, manager, **kw):
    for request in requests:
        manager.register_application(request)
    f = IlpFormulation(requests, state, manager, **kw)
    f.build()
    return f


def build(num_nodes=4):
    topo = build_cluster(num_nodes, racks=2, memory_mb=8 * 1024, vcores=8)
    return topo, ClusterState(topo), ConstraintManager(topo)


class TestVariableCreation:
    def test_x_vars_only_where_container_fits(self):
        topo, state, manager = build(num_nodes=3)
        # Fill one node completely.
        state.allocate("bg", "n00000", Resource(8 * 1024, 8), ("task",), "bg")
        f = formulation([make_lra("a", containers=1)], state, manager)
        nodes_with_vars = {n for (_, _, n) in f.x_vars}
        assert "n00000" not in nodes_with_vars
        assert {"n00001", "n00002"} <= nodes_with_vars

    def test_s_var_per_request(self):
        _, state, manager = build()
        f = formulation([make_lra("a"), make_lra("b")], state, manager)
        assert len(f.s_vars) == 2

    def test_z_var_per_candidate_node(self):
        topo, state, manager = build(num_nodes=4)
        f = formulation([make_lra("a")], state, manager)
        assert len(f.z_vars) == 4

    def test_machines_used_vars_only_when_weighted(self):
        _, state, manager = build()
        f = formulation([make_lra("a")], state, manager)
        assert f.u_vars == {}
        _, state2, manager2 = build()
        f2 = formulation(
            [make_lra("b")], state2, manager2,
            weights=IlpWeights(w4_machines=0.5),
        )
        assert f2.u_vars


class TestBigD:
    def test_dominates_cmin(self):
        _, state, manager = build()
        req = make_lra("a", containers=2, tags={"w"},
                       constraints=[cardinality("w", "w", 5, UNBOUNDED, "node")])
        manager.register_application(req)
        f = IlpFormulation([req], state, manager)
        tc = req.constraints[0].tag_constraints[0]
        assert f._big_d(tc, constant=0) >= tc.cmin

    def test_dominates_max_gamma_minus_cmax(self):
        _, state, manager = build()
        # 6 matching new containers against cmax=1.
        req = make_lra("a", containers=6, tags={"w"},
                       constraints=[cardinality("w", "w", 0, 1, "node")])
        manager.register_application(req)
        f = IlpFormulation([req], state, manager)
        tc = req.constraints[0].tag_constraints[0]
        assert f._big_d(tc, constant=0) >= 6 - tc.cmax


class TestSlackNormalisation:
    def test_cmax_positive_uses_inverse_cmax(self):
        _, state, manager = build()
        req = make_lra("a", containers=2, tags={"w"})
        manager.register_application(req)
        f = IlpFormulation([req], state, manager)
        tc = TagConstraint(TagExpression("w"), 0, 4)
        assert f._max_slack_norm(tc) == pytest.approx(0.25)

    def test_anti_affinity_normalised_by_pool(self):
        """cmax=0 divides by the worst possible slack, keeping one fully
        violated constraint's objective contribution in [0, 1]."""
        _, state, manager = build()
        req = make_lra("a", containers=4, tags={"w"})
        manager.register_application(req)
        f = IlpFormulation([req], state, manager)
        tc = TagConstraint(TagExpression("w"), 0, 0)
        # 4 matching containers -> worst slack = 3 others.
        assert f._max_slack_norm(tc) == pytest.approx(1 / 3)

    def test_existing_containers_count_toward_pool(self):
        _, state, manager = build()
        state.allocate("e1", "n00000", Resource(1024, 1), ("w",), "x")
        state.allocate("e2", "n00001", Resource(1024, 1), ("w",), "x")
        req = make_lra("a", containers=2, tags={"w"})
        manager.register_application(req)
        f = IlpFormulation([req], state, manager)
        tc = TagConstraint(TagExpression("w"), 0, 0)
        assert f._max_slack_norm(tc) == pytest.approx(1 / 3)  # pool 4 - 1


class TestGroundingBookkeeping:
    def test_constraints_deduplicated(self):
        """Identical constraints from several apps ground once."""
        _, state, manager = build()
        shared = cardinality("w", "w", 0, 1, "node")
        a = make_lra("a", containers=2, tags={"w"}, constraints=[shared])
        b = make_lra("b", containers=2, tags={"w"}, constraints=[shared])
        manager.register_application(a)
        manager.register_application(b)
        f = IlpFormulation([a, b], state, manager)
        assert f._active_constraints().count(shared) == 1

    def test_irrelevant_deployed_rows_skipped(self):
        """Deployed-subject inequalities that no new variable can influence
        are not grounded (they would only dilute the objective)."""
        topo, state, manager = build()
        old = make_lra(
            "old", containers=2, tags={"legacy"},
            constraints=[affinity(["appID:old", "legacy"],
                                  ["appID:old", "legacy"], "rack")],
        )
        manager.register_application(old)
        state.allocate("old/c0", "n00000", Resource(1024, 1),
                       ("legacy", "appID:old"), "old")
        state.allocate("old/c1", "n00002", Resource(1024, 1),
                       ("legacy", "appID:old"), "old")
        # The new app shares no tags with 'old'.
        new = make_lra("new", containers=2, tags={"fresh"})
        manager.register_application(new)
        f = IlpFormulation([new], state, manager)
        f.build()
        # No slack variables should reference the legacy constraint.
        legacy = [entry for entry in f._slack_vars
                  if "legacy" in repr(entry[0])]
        assert legacy == []

    def test_relevant_deployed_rows_grounded(self):
        topo, state, manager = build()
        old = make_lra(
            "old", containers=1, tags={"quiet"},
            constraints=[anti_affinity("quiet", "noisy", "node")],
        )
        manager.register_application(old)
        state.allocate("old/c0", "n00000", Resource(1024, 1),
                       ("quiet", "appID:old"), "old")
        new = make_lra("new", containers=1, tags={"noisy"})
        manager.register_application(new)
        f = IlpFormulation([new], state, manager)
        f.build()
        assert any("dep[" in entry[1] for entry in f._slack_vars)

    def test_build_idempotent(self):
        _, state, manager = build()
        req = make_lra("a")
        manager.register_application(req)
        f = IlpFormulation([req], state, manager)
        model1 = f.build()
        n_vars = model1.num_variables
        model2 = f.build()
        assert model2 is model1
        assert model2.num_variables == n_vars
