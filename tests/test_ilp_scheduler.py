"""Tests for IlpScheduler's batching knobs and candidate-node pruning."""

from __future__ import annotations

import pytest

from repro import (
    ClusterState,
    ConstraintManager,
    IlpScheduler,
    Resource,
    affinity,
    build_cluster,
    evaluate_violations,
)
from tests.helpers import make_lra, place_all


class TestCandidatePool:
    def pool(self, scheduler, requests, state, manager):
        return scheduler._candidate_pool(requests, state, manager)

    def test_disabled_by_default(self):
        topo = build_cluster(30)
        state, manager = ClusterState(topo), ConstraintManager(topo)
        scheduler = IlpScheduler()
        assert self.pool(scheduler, [make_lra()], state, manager) is None

    def test_small_cluster_returns_all(self):
        topo = build_cluster(10)
        state, manager = ClusterState(topo), ConstraintManager(topo)
        scheduler = IlpScheduler(max_candidate_nodes=20)
        pool = self.pool(scheduler, [make_lra()], state, manager)
        assert sorted(pool) == sorted(topo.node_ids())

    def test_contains_whole_emptiest_rack(self):
        topo = build_cluster(40, racks=4)
        state, manager = ClusterState(topo), ConstraintManager(topo)
        # Load every rack except rack-2.
        for node in topo:
            if node.rack != "rack-2":
                state.allocate(
                    f"bg/{node.node_id}", node.node_id, Resource(8 * 1024, 4),
                    ("task",), "bg", long_running=False,
                )
        scheduler = IlpScheduler(max_candidate_nodes=12)
        pool = set(self.pool(scheduler, [make_lra()], state, manager))
        rack2 = {n.node_id for n in topo if n.rack == "rack-2"}
        assert rack2 <= pool

    def test_includes_constraint_target_nodes(self):
        topo = build_cluster(60, racks=6)
        state, manager = ClusterState(topo), ConstraintManager(topo)
        # The cache lives on an otherwise unattractive (loaded) node.
        state.allocate("cache/0", "n00017", Resource(12 * 1024, 6), ("cache",), "c")
        request = make_lra("a", constraints=[affinity("w", "cache", "node")])
        manager.register_application(request)
        scheduler = IlpScheduler(max_candidate_nodes=10)
        pool = self.pool(scheduler, [request], state, manager)
        assert "n00017" in pool

    def test_pool_is_bounded(self):
        topo = build_cluster(500, racks=10)
        state, manager = ClusterState(topo), ConstraintManager(topo)
        scheduler = IlpScheduler(max_candidate_nodes=60)
        pool = self.pool(scheduler, [make_lra()], state, manager)
        assert len(pool) <= 60 * 2
        assert len(set(pool)) == len(pool)

    def test_excludes_unavailable_nodes(self):
        topo = build_cluster(20)
        topo.node("n00000").available = False
        state, manager = ClusterState(topo), ConstraintManager(topo)
        scheduler = IlpScheduler(max_candidate_nodes=10)
        pool = self.pool(scheduler, [make_lra()], state, manager)
        assert "n00000" not in pool


class TestPrunedScheduling:
    def test_constraints_satisfied_under_pruning(self):
        topo = build_cluster(80, racks=8)
        state, manager = ClusterState(topo), ConstraintManager(topo)
        scheduler = IlpScheduler(max_candidate_nodes=30)
        from repro import anti_affinity

        request = make_lra(
            "a", containers=5, tags={"w"},
            constraints=[anti_affinity("w", "w", "node")],
        )
        manager.register_application(request)
        result = scheduler.place([request], state, manager)
        place_all(state, result)
        report = evaluate_violations(state, manager=manager)
        assert report.violating_containers == 0
        assert len({p.node_id for p in result.placements}) == 5

    def test_gap_and_time_limit_accepted(self):
        topo = build_cluster(10)
        state, manager = ClusterState(topo), ConstraintManager(topo)
        scheduler = IlpScheduler(time_limit_s=1.0, mip_rel_gap=0.05)
        result = scheduler.place([make_lra(containers=2)], state, manager)
        assert len(result.placements) == 2
