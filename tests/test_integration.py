"""Cross-module integration tests: the whole system working together.

Each test here exercises a realistic pipeline spanning several subpackages
(apps + core + sim + taskscheduler + perf + failures + metrics), the way
the benchmark harness and a downstream user would.
"""

from __future__ import annotations

import pytest

from repro import (
    CapacityScheduler,
    ClusterState,
    ConstraintManager,
    IlpScheduler,
    MigrationPlanner,
    Resource,
    SerialScheduler,
    TaskRequest,
    build_cluster,
    evaluate_violations,
)
from repro.apps import hbase_instance, memcached_instance, storm_instance, tensorflow_instance
from repro.failures import generate_trace, max_unavailability_series, su_distribution
from repro.perf import extract_features, iterative_runtime, serving_throughput
from repro.sim import ClusterSimulation, SimConfig
from repro.workloads import GridMixConfig, fill_cluster, generate_tasks


class TestFullSimulationPipeline:
    def test_mixed_workload_end_to_end(self):
        """LRAs and tasks through the two-scheduler simulation: everything
        placed, no constraint violations, tasks complete and free memory."""
        topology = build_cluster(30, racks=3, memory_mb=16 * 1024, vcores=8)
        sim = ClusterSimulation(
            topology,
            IlpScheduler(max_candidate_nodes=30, time_limit_s=5.0, mip_rel_gap=0.02),
            config=SimConfig(scheduling_interval_s=5.0, horizon_s=60.0),
        )
        sim.submit_lra(hbase_instance("hb", region_servers=6, max_rs_per_node=2), at=1.0)
        sim.submit_lra(tensorflow_instance("tf", workers=4, max_workers_per_node=2), at=6.0)
        for arrival, task in generate_tasks(GridMixConfig(seed=3), count=40):
            sim.submit_task(task, at=arrival)
        sim.run(60.0)

        assert len(sim.lra_latencies()) == 2
        report = evaluate_violations(sim.state, manager=sim.medea.manager)
        assert report.violating_containers == 0
        assert len(sim.task_latencies()) == 40
        # HBase (9 containers) + TF (7 containers) still running.
        lra_containers = [
            c for c in sim.state.containers.values() if c.allocation.long_running
        ]
        assert len(lra_containers) == 9 + 7

    def test_lra_teardown_frees_cluster(self):
        topology = build_cluster(10, memory_mb=16 * 1024, vcores=8)
        sim = ClusterSimulation(
            topology, SerialScheduler(),
            config=SimConfig(scheduling_interval_s=5.0, horizon_s=60.0),
        )
        sim.submit_lra(
            hbase_instance("hb", region_servers=4, max_rs_per_node=2),
            at=1.0, duration_s=20.0,
        )
        sim.run(60.0)
        assert len(sim.state.containers) == 0
        assert sim.medea.manager.constraints_of("hb") == []


class TestPlacementToPerformance:
    def test_storm_memcached_affinity_improves_modelled_latency(self):
        """§2.2 pipeline: intra-inter placement measurably beats YARN-ish."""
        from repro.perf import LatencyModel, lookup_distance_classes, sample_lookup_latencies

        def mean_latency(policy, scheduler):
            topo = build_cluster(30, racks=3, memory_mb=16 * 1024, vcores=8)
            state = ClusterState(topo)
            manager = ConstraintManager(topo)
            mem = memcached_instance("mc")
            storm = storm_instance("st", placement=policy)
            for request in (mem, storm):
                manager.register_application(request)
            result = scheduler.place([mem, storm], state, manager)
            for p in result.placements:
                state.allocate(p.container_id, p.node_id, p.resource, p.tags, p.app_id)
            classes = lookup_distance_classes(state, "st", "mc")
            samples = sample_lookup_latencies(classes, LatencyModel(samples_per_pair=300))
            return sum(samples) / len(samples)

        collocated = mean_latency("intra-inter", IlpScheduler())
        from repro import ConstraintUnawareScheduler

        unconstrained = mean_latency("none", ConstraintUnawareScheduler(seed=5))
        assert collocated < unconstrained

    def test_constrained_placement_improves_modelled_throughput(self):
        def deploy(constrained):
            # 12 region servers on 12 nodes: a random placer necessarily
            # collocates some, anti-affinity spreads one per node.
            topo = build_cluster(12, racks=3, memory_mb=32 * 1024, vcores=16)
            state = ClusterState(topo)
            manager = ConstraintManager(topo)
            fill_cluster(state, 0.5)
            # rack_affinity off: the §2.2 anti-affinity study spreads
            # region servers; a 4-node rack cannot hold 12 spread RS.
            request = hbase_instance(
                "hb", region_servers=12, max_rs_per_node=1, with_aux=False,
                rack_affinity=False, constraints_enabled=constrained,
            )
            manager.register_application(request)
            scheduler = (
                IlpScheduler() if constrained
                else __import__("repro").ConstraintUnawareScheduler(seed=9)
            )
            result = scheduler.place([request], state, manager)
            for p in result.placements:
                state.allocate(p.container_id, p.node_id, p.resource, p.tags, p.app_id)
            return serving_throughput(60.0, extract_features(state, "hb", "hb_rs"))

        assert deploy(True) > deploy(False)


class TestResiliencePipeline:
    def test_placement_to_unavailability(self):
        topology = build_cluster(
            25, racks=5, memory_mb=16 * 1024, vcores=8, service_units=5
        )
        state = ClusterState(topology)
        manager = ConstraintManager(topology)
        from repro import cardinality
        from repro.apps import worker_containers
        from repro.core.requests import LRARequest
        from repro.tags import app_id_tag

        app_id = "svc"
        request = LRARequest(
            app_id,
            worker_containers(app_id, "w", "svc", 10, Resource(2048, 1)),
            [cardinality(
                (app_id_tag(app_id), "w"), (app_id_tag(app_id), "w"),
                0, 1, "service_unit",
            )],
        )
        manager.register_application(request)
        result = IlpScheduler().place([request], state, manager)
        for p in result.placements:
            state.allocate(p.container_id, p.node_id, p.resource, p.tags, p.app_id)
        distribution = su_distribution(state, app_id)
        assert max(distribution.values()) <= 2
        trace = generate_trace(5, 48, seed=3)
        series = max_unavailability_series({app_id: distribution}, trace)
        assert len(series) == 48
        assert all(0 <= v <= 1 for v in series)


class TestMigrationPipeline:
    def test_repair_after_churn(self):
        """Place well, disturb the cluster, migrate back to health."""
        topo = build_cluster(8, memory_mb=16 * 1024, vcores=8)
        state = ClusterState(topo)
        manager = ConstraintManager(topo)
        from repro import anti_affinity
        from tests.helpers import make_lra

        request = make_lra(
            "app", containers=3, tags={"w"},
            constraints=[anti_affinity("w", "w", "node")],
        )
        manager.register_application(request)
        # A deliberately bad initial placement (operator error / drift).
        for i in range(3):
            state.allocate(f"app/c{i}", "n00000", Resource(1024, 1),
                           ("w", "appID:app"), "app")
        before = evaluate_violations(state, manager=manager)
        assert before.violating_containers == 3
        planner = MigrationPlanner(migration_cost=0.1)
        plan = planner.plan(state, manager)
        planner.apply(state, plan)
        after = evaluate_violations(state, manager=manager)
        assert after.violating_containers == 0
