"""Tests for J-Kube / J-Kube++ — the Kubernetes algorithm baselines (§7.1)."""

from __future__ import annotations

import pytest

from repro import (
    ClusterState,
    ConstraintManager,
    JKubePlusPlusScheduler,
    JKubeScheduler,
    UNBOUNDED,
    affinity,
    anti_affinity,
    build_cluster,
    cardinality,
    evaluate_violations,
)
from repro.core.jkube import _kube_supported
from tests.helpers import make_lra, place_all


def build(num_nodes=8, racks=2, mem=8 * 1024):
    topo = build_cluster(num_nodes, racks=racks, memory_mb=mem, vcores=8)
    return topo, ClusterState(topo), ConstraintManager(topo)


class TestConstraintMapping:
    def test_affinity_passes_through(self):
        c = affinity("a", "b", "node")
        assert _kube_supported(c) == c

    def test_anti_affinity_passes_through(self):
        c = anti_affinity("a", "b", "node")
        assert _kube_supported(c) == c

    def test_cardinality_max_dropped(self):
        """A pure cmax cardinality bound has no Kubernetes equivalent."""
        assert _kube_supported(cardinality("a", "b", 0, 3, "node")) is None

    def test_cardinality_min_weakened_to_affinity(self):
        mapped = _kube_supported(cardinality("a", "b", 3, 5, "node"))
        assert mapped is not None
        tc = mapped.tag_constraints[0]
        assert tc.cmin == 1 and tc.cmax == UNBOUNDED


class TestJKube:
    def test_basic_placement(self):
        _, state, manager = build()
        result = JKubeScheduler().place([make_lra(containers=4)], state, manager)
        assert len(result.placements) == 4
        assert len(state.containers) == 0  # rolled back

    def test_honours_anti_affinity(self):
        _, state, manager = build()
        req = make_lra(
            "aa", containers=4, tags={"w"},
            constraints=[anti_affinity("w", "w", "node")],
        )
        result = JKubeScheduler().place([req], state, manager)
        assert len({p.node_id for p in result.placements}) == 4

    def test_ignores_cardinality(self):
        """J-Kube does not understand cmax bounds: under packing pressure it
        violates a <=2-per-node cap that J-Kube++ would respect."""
        topo = build_cluster(2, memory_mb=16 * 1024, vcores=16)
        state, manager = ClusterState(topo), ConstraintManager(topo)
        req = make_lra(
            "card", containers=6, tags={"w"},
            constraints=[cardinality("w", "w", 0, 1, "node")],
        )
        manager.register_application(req)
        result = JKubeScheduler().place([req], state, manager)
        place_all(state, result)
        # The balanced-resource scoring spreads 3+3, violating cmax=1.
        report = evaluate_violations(state, manager=manager)
        assert report.violating_containers > 0

    def test_rejects_on_capacity(self):
        topo = build_cluster(1, memory_mb=1024, vcores=1)
        state, manager = ClusterState(topo), ConstraintManager(topo)
        req = make_lra("f", containers=3, memory_mb=1024, vcores=1)
        result = JKubeScheduler().place([req], state, manager)
        assert result.rejected_apps == ["f"]


class TestJKubePlusPlus:
    def test_honours_cardinality(self):
        _, state, manager = build(num_nodes=4)
        req = make_lra(
            "card", containers=6, tags={"w"},
            constraints=[cardinality("w", "w", 0, 1, "node")],
        )
        manager.register_application(req)
        result = JKubePlusPlusScheduler().place([req], state, manager)
        place_all(state, result)
        report = evaluate_violations(state, manager=manager)
        assert report.violating_containers == 0

    def test_name_and_flag(self):
        assert JKubeScheduler.supports_cardinality is False
        assert JKubePlusPlusScheduler.supports_cardinality is True
        assert JKubeScheduler.name == "J-KUBE"
        assert JKubePlusPlusScheduler.name == "J-KUBE++"


class TestOneAtATimeWeakness:
    def test_ilp_beats_jkube_on_interlocking_constraints(self):
        """The §7.4 motif: J-Kube commits container-by-container and paints
        itself into a corner that batch optimisation avoids.

        Two apps must each collocate with a scarce 'cache' container pair
        such that only one assignment of apps to caches works; the ILP finds
        it, J-Kube++ may not.  We assert the ILP achieves <= J-Kube++'s
        violation count (and zero in absolute terms).
        """
        from repro import IlpScheduler, LRARequest, ContainerRequest, Resource

        topo = build_cluster(2, memory_mb=4 * 1024, vcores=4)
        state = ClusterState(topo)
        # Each node can hold one extra 2 GB worker next to its cache.
        state.allocate("cacheA", "n00000", Resource(2 * 1024, 2), ("cache",), "ca")
        state.allocate("cacheB", "n00001", Resource(2 * 1024, 2), ("cache",), "cb")

        def worker(app):
            return LRARequest(
                app,
                [ContainerRequest(f"{app}/w", Resource(2 * 1024, 2), frozenset({"w"}))],
                [affinity("w", "cache", "node")],
            )

        for scheduler, expected_max in ((IlpScheduler(), 0),):
            manager = ConstraintManager(topo)
            reqs = [worker("w1"), worker("w2")]
            for r in reqs:
                manager.register_application(r)
            result = scheduler.place(reqs, state, manager)
            place_all(state, result)
            report = evaluate_violations(state, manager=manager)
            assert report.violating_containers <= expected_max
            for p in result.placements:
                state.release(p.container_id)
