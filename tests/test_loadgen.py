"""Tests for the latency-under-load plane: the placement request path
(``PlacementService`` + request-scoped tracing), the load generator
(``repro.obs.load``), the sweep/knee analysis, and the serving-path
regression gate wiring."""

from __future__ import annotations

import json
import random
import urllib.error
import urllib.request

import pytest

from repro import (
    ClusterState,
    ConstraintManager,
    NodeCandidatesScheduler,
    build_cluster,
)
from repro.core.scheduler import (
    REJECT_OVERLOAD,
    PlacementService,
)
from repro.obs.load import (
    LOADGEN_SCHEMA,
    HttpTarget,
    InProcessTarget,
    RequestTemplate,
    VirtualTarget,
    build_arrivals,
    burst_arrivals,
    detect_knee,
    poisson_arrivals,
    render_sweep,
    render_sweep_html,
    request_from_obj,
    request_to_obj,
    run_step,
    run_sweep,
    sweep_to_bench,
    sweep_to_json,
    uniform_arrivals,
)
from repro.obs.metrics import Metrics, set_metrics
from repro.obs.trace import (
    MemorySink,
    Tracer,
    current_request_id,
    request_context,
    set_tracer,
)


@pytest.fixture()
def isolate_obs():
    prev_tracer = set_tracer(None)
    prev_metrics = set_metrics(Metrics())
    yield
    from repro.obs.serve import shutdown_server

    shutdown_server()
    set_tracer(prev_tracer)
    set_metrics(prev_metrics)


def _service(nodes=40, **kwargs):
    topology = build_cluster(nodes, racks=4, memory_mb=16 * 1024, vcores=8)
    state = ClusterState(topology)
    return PlacementService(
        state, NodeCandidatesScheduler(), ConstraintManager(topology), **kwargs
    )


class TestArrivals:
    def test_poisson_seeded_and_mean_rate(self):
        a = poisson_arrivals(50.0, 2_000, random.Random(3))
        b = poisson_arrivals(50.0, 2_000, random.Random(3))
        assert a == b
        assert a == sorted(a)
        # Realized rate within a few percent of nominal at N=2000.
        assert a[-1] == pytest.approx(2_000 / 50.0, rel=0.1)

    def test_uniform_spacing(self):
        arrivals = uniform_arrivals(10.0, 5)
        assert arrivals == pytest.approx([0.1, 0.2, 0.3, 0.4, 0.5])

    def test_burst_stays_inside_on_windows(self):
        arrivals = burst_arrivals(
            20.0, 500, random.Random(9), period_s=2.0, duty=0.25
        )
        assert arrivals == sorted(arrivals)
        for t in arrivals:
            assert t % 2.0 <= 0.5 + 1e-9  # only the 25% on-window is populated

    def test_dispatch_and_validation(self):
        rng = random.Random(0)
        assert build_arrivals("uniform", 10, 3, rng) == uniform_arrivals(10, 3)
        with pytest.raises(ValueError, match="unknown arrival"):
            build_arrivals("fractal", 10, 3, rng)
        with pytest.raises(ValueError):
            poisson_arrivals(0.0, 3, rng)


class TestRequestCodec:
    def test_int_shorthand(self):
        request = request_from_obj(
            {"app_id": "a1", "containers": 3, "memory_mb": 512, "vcores": 2,
             "tags": ["hbase"]}
        )
        assert request.app_id == "a1"
        assert [c.container_id for c in request.containers] == [
            "a1-c0", "a1-c1", "a1-c2"
        ]
        assert request.containers[0].resource.memory_mb == 512
        assert "hbase" in request.containers[0].tags

    def test_round_trip(self):
        request = RequestTemplate(containers=2, memory_mb=2048).build(7)
        restored = request_from_obj(request_to_obj(request))
        assert restored.app_id == request.app_id
        assert [c.container_id for c in restored.containers] == [
            c.container_id for c in request.containers
        ]
        assert [c.resource for c in restored.containers] == [
            c.resource for c in request.containers
        ]

    def test_malformed_payloads_raise(self):
        with pytest.raises((KeyError, TypeError)):
            request_from_obj([1, 2, 3])
        with pytest.raises(KeyError):
            request_from_obj({"containers": 2})
        with pytest.raises(ValueError):
            request_from_obj({"app_id": "a", "containers": 0})


class TestVirtualSweep:
    RATES = [10, 20, 40, 60, 80]

    def _sweep(self, seed=7, **kwargs):
        target = VirtualTarget(service_time_s=0.02, servers=1, seed=seed)
        return run_sweep(
            target, RequestTemplate(), rates=self.RATES,
            requests_per_step=200, seed=seed, **kwargs
        )

    def test_same_seed_json_byte_stable(self):
        assert sweep_to_json(self._sweep()) == sweep_to_json(self._sweep())

    def test_different_seed_differs(self):
        assert sweep_to_json(self._sweep(seed=7)) != sweep_to_json(
            self._sweep(seed=8)
        )

    def test_knee_detected_near_theoretical_capacity(self):
        sweep = self._sweep()
        assert sweep.knee is not None
        # 1 server at 20ms mean service ⇒ ~50 rps capacity: the ladder
        # must saturate somewhere above 40 and the measured capacity land
        # below the theoretical ceiling.
        assert sweep.knee["offered_rps"] > 40
        assert sweep.knee["capacity_rps"] < 55
        assert sweep.knee["reason"] in ("throughput", "latency")
        document = sweep_to_obj_dict(sweep)
        assert document["deterministic"] is True
        assert document["schema"] == LOADGEN_SCHEMA

    def test_unsaturated_ladder_has_no_knee(self):
        target = VirtualTarget(service_time_s=0.001, servers=4, seed=1)
        sweep = run_sweep(
            target, RequestTemplate(), rates=[5, 10, 20],
            requests_per_step=150, seed=1
        )
        assert sweep.knee is None
        assert "no saturation knee" in render_sweep(sweep)

    def test_closed_loop_virtual_deterministic(self):
        def once():
            target = VirtualTarget(service_time_s=0.005, servers=2, seed=3)
            return sweep_to_json(run_sweep(
                target, RequestTemplate(), rates=[50, 400],
                requests_per_step=120, mode="closed", concurrency=8, seed=3
            ))
        assert once() == once()

    def test_latencies_rise_with_load(self):
        sweep = self._sweep()
        p99s = [s.hist.quantile(99) for s in sweep.steps]
        assert p99s[-1] > 3 * p99s[0]

    def test_render_outputs(self):
        sweep = self._sweep()
        text = render_sweep(sweep)
        assert "saturation knee" in text
        assert "p99 ms" in text
        html = render_sweep_html(sweep)
        assert "<svg" in html and "Saturation knee" in html


def sweep_to_obj_dict(sweep):
    from repro.obs.load import sweep_to_obj

    return sweep_to_obj(sweep)


class TestPlacementService:
    def test_places_and_traces_with_request_ids(self, isolate_obs):
        sink = MemorySink()
        set_tracer(Tracer([sink]))
        service = _service()
        response = service.handle(RequestTemplate().build(0), now=1.0)
        assert response.placed
        assert response.request_id == "req-00000001"
        assert len(response.nodes) == 4
        kinds = [e.kind for e in sink.events]
        assert "request.submit" in kinds
        assert "request.place" in kinds
        assert "request.done" in kinds
        for event in sink.events:
            if event.kind.startswith("request."):
                assert event.data["request_id"] == "req-00000001"
        # Spans carry the id too (admission → queue → placement → solver).
        span_events = [e for e in sink.events if e.kind == "span"]
        assert span_events
        assert all(
            e.data.get("request_id") == "req-00000001" for e in span_events
        )

    def test_steady_state_default_does_not_fill_cluster(self, isolate_obs):
        service = _service(nodes=10)
        for i in range(30):
            response = service.handle(RequestTemplate().build(i))
            assert response.placed, response.reason
        assert len(service.state.containers) == 0

    def test_retain_commits_placements(self, isolate_obs):
        service = _service(nodes=10, retain=True)
        assert service.handle(RequestTemplate().build(0)).placed
        assert len(service.state.containers) == 4

    def test_overload_rejection(self, isolate_obs):
        service = _service(max_pending=0)
        response = service.handle(RequestTemplate().build(0))
        assert not response.placed
        assert response.reason == REJECT_OVERLOAD
        assert service.stats()["rejected"] == 1

    def test_latency_lands_in_ambient_histogram(self, isolate_obs):
        metrics = Metrics()
        set_metrics(metrics)
        service = _service()
        service.handle(RequestTemplate().build(0))
        merged = metrics.histograms()["place_request_seconds"].merged()
        assert merged.count == 1

    def test_in_process_target_step(self, isolate_obs):
        service = _service()
        step = run_step(
            InProcessTarget(service), RequestTemplate(containers=2),
            offered_rps=200.0, requests=30, concurrency=8, seed=5
        )
        assert step.placed == 30
        assert step.hist.count == 30
        assert step.achieved_rps > 0


class TestRequestContext:
    def test_injection_only_inside_context(self):
        sink = MemorySink()
        tracer = Tracer([sink])
        tracer.emit("x.out", time=0.0, data={"a": 1})
        with request_context("r-9"):
            assert current_request_id() == "r-9"
            tracer.emit("x.in", time=1.0, data={"a": 2})
            tracer.emit("x.explicit", time=2.0,
                        data={"a": 3, "request_id": "mine"})
        assert current_request_id() is None
        by_kind = {e.kind: e for e in sink.events}
        assert "request_id" not in by_kind["x.out"].data
        assert by_kind["x.in"].data["request_id"] == "r-9"
        # An explicit id is never overwritten.
        assert by_kind["x.explicit"].data["request_id"] == "mine"

    def test_canonical_events_unchanged_without_context(self):
        """With no request path in play the canonical stream is identical
        to what an un-instrumented tracer emits — the byte-stability
        guarantee for existing same-seed traces."""
        sink = MemorySink()
        tracer = Tracer([sink])
        tracer.emit("sim.heartbeat", time=1.0, data={"allocations": 2})
        canonical = json.loads(sink.events[0].canonical_json())
        assert "request_id" not in canonical["data"]
        assert set(canonical) == {"kind", "seq", "time", "data"}


class TestServingPathHTTP:
    def _serve(self, service):
        from repro.obs.serve import install

        server = install(0)
        server.attach_placement(service)
        return server

    def test_post_place_end_to_end(self, isolate_obs):
        server = self._serve(_service())
        body = json.dumps(request_to_obj(RequestTemplate().build(0))).encode()
        request = urllib.request.Request(
            f"{server.url}/place", data=body,
            headers={"Content-Type": "application/json"}, method="POST",
        )
        with urllib.request.urlopen(request, timeout=5) as response:
            payload = json.loads(response.read())
        assert payload["placed"] is True
        assert payload["request_id"].startswith("req-")
        assert len(payload["nodes"]) == 4
        # The serving requests roll into the snapshot for `repro watch`.
        assert server.snapshot_doc()["wall"]["requests"]["placed"] == 1

    def test_http_target_drives_sweep(self, isolate_obs):
        server = self._serve(_service())
        step = run_step(
            HttpTarget(server.url), RequestTemplate(containers=2),
            offered_rps=100.0, requests=20, concurrency=8, seed=2
        )
        assert step.placed == 20
        assert step.errors == 0

    def test_bad_json_is_400(self, isolate_obs):
        server = self._serve(_service())
        request = urllib.request.Request(
            f"{server.url}/place", data=b"{nope", method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 400

    def test_overload_is_503_with_retry_after(self, isolate_obs):
        server = self._serve(_service(max_pending=0))
        body = json.dumps(request_to_obj(RequestTemplate().build(0))).encode()
        request = urllib.request.Request(
            f"{server.url}/place", data=body, method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 503
        assert excinfo.value.headers["Retry-After"] is not None
        excinfo.value.read()

    def test_no_service_attached_is_503(self, isolate_obs):
        from repro.obs.serve import install

        server = install(0)
        request = urllib.request.Request(
            f"{server.url}/place", data=b"{}", method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 503


class TestBenchGate:
    def _bench(self, delay_s):
        service = _service(extra_place_delay_s=delay_s)
        sweep = run_sweep(
            InProcessTarget(service), RequestTemplate(containers=2),
            rates=[100.0], requests_per_step=25, concurrency=8, seed=4
        )
        return sweep_to_bench(sweep)

    def test_injected_slowdown_fails_gate(self, isolate_obs):
        from repro.obs.bench import compare_bench

        baseline = self._bench(0.0)
        slowed = self._bench(0.05)  # ≥2x the unslowed place path
        series = ("place_latency_p50_s", "place_latency_p99_s")
        comparison = compare_bench(
            baseline, slowed, ratio=1.5, abs_floor_s=0.005, series=series
        )
        assert not comparison.ok
        regressed = [c for c in comparison.checks if c.regressed]
        assert regressed
        # And the unslowed run passes against itself.
        again = compare_bench(
            baseline, self._bench(0.0), ratio=1.5, abs_floor_s=0.05,
            series=series,
        )
        assert again.ok

    def test_bench_document_shape(self, isolate_obs):
        document = self._bench(0.0)
        assert document["schema"] == 2
        entry = document["benchmarks"]["serve_sweep"]
        for name in ("place_latency_p50_s", "place_latency_p95_s",
                     "place_latency_p99_s", "achieved_rps"):
            assert entry["stats"][name]["count"] == 1
            assert entry["series"][name]["t"] == [100.0]


class TestLoadgenCli:
    def test_virtual_sweep_json_stdout_byte_stable(self, capsys):
        from repro.cli import main

        argv = ["loadgen", "--virtual", "--service-time", "0.02",
                "--sweep", "10,40,80", "--requests", "120",
                "--seed", "7", "--json", "-"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        document = json.loads(first)
        assert document["schema"] == LOADGEN_SCHEMA
        assert document["deterministic"] is True
        assert [s["offered_rps"] for s in document["steps"]] == [10, 40, 80]
        for step in document["steps"]:
            for key in ("p50_s", "p95_s", "p99_s"):
                assert key in step["latency"]
        assert document["knee"] is not None

    def test_outputs_written(self, tmp_path, capsys):
        from repro.cli import main

        json_out = tmp_path / "curve.json"
        html_out = tmp_path / "curve.html"
        bench_out = tmp_path / "BENCH_serve.json"
        assert main([
            "loadgen", "--virtual", "--sweep", "20,200", "--requests", "80",
            "--seed", "1", "--json", str(json_out), "--html", str(html_out),
            "--bench-out", str(bench_out),
        ]) == 0
        assert json.loads(json_out.read_text())["schema"] == LOADGEN_SCHEMA
        assert "<svg" in html_out.read_text()
        bench = json.loads(bench_out.read_text())
        assert "place_latency_p99_s" in bench["benchmarks"]["serve_sweep"]["stats"]
        assert "loadgen sweep" in capsys.readouterr().out

    def test_bad_sweep_spec_is_usage_error(self, capsys):
        from repro.cli import EXIT_USAGE, main

        assert main(["loadgen", "--virtual", "--sweep", "10,zap"]) == EXIT_USAGE
        assert main(["loadgen", "--virtual", "--sweep", "-5"]) == EXIT_USAGE
        assert main(["loadgen", "--rate", "0"]) == EXIT_USAGE
        capsys.readouterr()
