"""Tests for the Medea two-scheduler facade (§3, Fig. 4)."""

from __future__ import annotations

import pytest

from repro import (
    CapacityScheduler,
    ClusterState,
    FifoScheduler,
    IlpScheduler,
    MedeaScheduler,
    Resource,
    SerialScheduler,
    TaskRequest,
    build_cluster,
)
from tests.helpers import make_lra


def build_medea(num_nodes=4, mem=8 * 1024, ilp_all=False, scheduler=None,
                max_attempts=3):
    topo = build_cluster(num_nodes, memory_mb=mem, vcores=8)
    state = ClusterState(topo)
    task_sched = CapacityScheduler(state)
    medea = MedeaScheduler(
        state,
        scheduler or SerialScheduler(),
        task_sched,
        ilp_all=ilp_all,
        max_attempts=max_attempts,
    )
    return medea, state


class TestRouting:
    def test_lra_waits_for_cycle(self):
        medea, state = build_medea()
        medea.submit_lra(make_lra("a", containers=2), now=0.0)
        assert medea.pending_lras() == 1
        assert len(state.containers) == 0
        medea.run_cycle(now=10.0)
        assert medea.pending_lras() == 0
        assert len(state.containers) == 2

    def test_task_goes_straight_to_task_scheduler(self):
        medea, state = build_medea()
        medea.submit_task(
            TaskRequest("t1", "app", Resource(1024, 1)), now=0.0
        )
        assert medea.task_scheduler.pending_tasks() == 1
        medea.heartbeat("n00000", now=1.0)
        assert "t1" in state.containers

    def test_ilp_all_routes_tasks_through_lra_path(self):
        medea, state = build_medea(ilp_all=True)
        medea.submit_task(TaskRequest("t1", "app", Resource(1024, 1)), now=0.0)
        assert medea.task_scheduler.pending_tasks() == 0
        assert medea.pending_lras() == 1
        medea.run_cycle(now=10.0)
        assert "t1" in state.containers

    def test_constraints_registered_at_submit(self):
        from repro import affinity

        medea, _ = build_medea()
        req = make_lra("a", constraints=[affinity("x", "y", "node")])
        medea.submit_lra(req)
        assert medea.manager.constraints_of("a")

    def test_mismatched_state_rejected(self):
        topo = build_cluster(2)
        other = ClusterState(build_cluster(2))
        with pytest.raises(ValueError):
            MedeaScheduler(ClusterState(topo), SerialScheduler(), FifoScheduler(other))


class TestSchedulingCycle:
    def test_latency_measured_from_submit(self):
        medea, _ = build_medea()
        medea.submit_lra(make_lra("a"), now=3.0)
        medea.run_cycle(now=10.0)
        assert medea.placed_lra_latencies() == [pytest.approx(7.0)]

    def test_batch_accumulates_between_cycles(self):
        medea, state = build_medea()
        medea.submit_lra(make_lra("a", containers=1), now=0.0)
        medea.submit_lra(make_lra("b", containers=1), now=5.0)
        medea.run_cycle(now=10.0)
        assert len(state.containers) == 2
        assert len(medea.cycle_solve_times) == 1

    def test_empty_cycle_is_cheap(self):
        medea, _ = build_medea()
        result = medea.run_cycle(now=10.0)
        assert len(result) == 0
        assert medea.cycle_solve_times == []

    def test_max_batch_size_caps_periodicity(self):
        """With max_batch_size=2, five pending LRAs need three cycles."""
        topo = build_cluster(8, memory_mb=8 * 1024, vcores=8)
        state = ClusterState(topo)
        medea = MedeaScheduler(
            state, SerialScheduler(), CapacityScheduler(state), max_batch_size=2
        )
        for i in range(5):
            medea.submit_lra(make_lra(f"b{i}", containers=1), now=0.0)
        sizes = []
        while medea.pending_lras():
            result = medea.run_cycle(now=10.0)
            sizes.append(len(result.placed_apps()))
        assert sizes == [2, 2, 1]

    def test_rejected_app_resubmitted(self):
        """An app that doesn't fit stays pending for later cycles."""
        medea, state = build_medea(num_nodes=1, mem=2 * 1024)
        big = make_lra("big", containers=4, memory_mb=1024, vcores=1)
        medea.submit_lra(big, now=0.0)
        medea.run_cycle(now=10.0)
        assert medea.pending_lras() == 1  # resubmitted
        # Free the cluster: a background container was the blocker?  No —
        # capacity itself; expand by releasing nothing and trying again
        # until attempts run out.
        medea.run_cycle(now=20.0)
        medea.run_cycle(now=30.0)
        assert medea.outcomes["big"].dropped
        assert medea.pending_lras() == 0

    def test_drop_unregisters_constraints(self):
        from repro import anti_affinity

        medea, _ = build_medea(num_nodes=1, mem=1024, max_attempts=1)
        req = make_lra(
            "x", containers=4, memory_mb=1024,
            constraints=[anti_affinity("w", "w", "node")],
        )
        medea.submit_lra(req, now=0.0)
        medea.run_cycle(now=10.0)
        assert medea.outcomes["x"].dropped
        assert medea.manager.constraints_of("x") == []

    def test_placement_conflict_triggers_resubmission(self):
        """§5.4: if the state changes between decision and allocation, the
        LRA is resubmitted."""
        medea, state = build_medea(num_nodes=1, mem=4 * 1024)

        class ConflictingScheduler(SerialScheduler):
            """Emits a placement, then a task grabs the node first."""

            def place(self, requests, state_, manager):
                result = super().place(requests, state_, manager)
                # Simulate the race: a task lands on the target node after
                # the decision but before allocation.
                state_.allocate(
                    "sneaky-task", "n00000", Resource(3 * 1024, 1), ("task",),
                    "bg", long_running=False,
                )
                return result

        medea.lra_scheduler = ConflictingScheduler()
        medea.submit_lra(make_lra("a", containers=2, memory_mb=1024), now=0.0)
        medea.run_cycle(now=10.0)
        assert medea.pending_lras() == 1
        assert medea.outcomes["a"].placed_time is None
        # Remove the interloper; the resubmitted app lands next cycle.
        state.release("sneaky-task")
        medea.lra_scheduler = SerialScheduler()
        medea.run_cycle(now=20.0)
        assert medea.outcomes["a"].placed_time == 20.0


class TestLraLifecycle:
    def test_complete_releases_and_unregisters(self):
        from repro import affinity

        medea, state = build_medea()
        req = make_lra("a", containers=2, constraints=[affinity("x", "y", "node")])
        medea.submit_lra(req)
        medea.run_cycle(now=10.0)
        medea.complete_lra("a")
        assert len(state.containers) == 0
        assert medea.manager.constraints_of("a") == []

    def test_heartbeat_all(self):
        medea, state = build_medea()
        for i in range(3):
            medea.submit_task(TaskRequest(f"t{i}", "app", Resource(1024, 1)))
        allocations = medea.heartbeat_all(now=1.0)
        assert len(allocations) == 3


class TestWithIlpScheduler:
    def test_end_to_end_with_constraints(self):
        from repro import anti_affinity, evaluate_violations

        medea, state = build_medea(scheduler=IlpScheduler())
        req = make_lra(
            "a", containers=3, tags={"w"},
            constraints=[anti_affinity("w", "w", "node")],
        )
        medea.submit_lra(req, now=0.0)
        medea.run_cycle(now=10.0)
        report = evaluate_violations(state, manager=medea.manager)
        assert report.subject_containers == 3
        assert report.violating_containers == 0
