"""Tests for metrics: statistics helpers and the violation auditor."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro import (
    BoxStats,
    ClusterState,
    ConstraintManager,
    Resource,
    anti_affinity,
    build_cluster,
    cardinality,
    evaluate_violations,
)
from repro.obs.stats import (
    EmptyDataError,
    cdf_points,
    coefficient_of_variation,
    percentile,
)
from repro import CompoundConstraint, affinity
from tests.helpers import make_lra

floats = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=50
)


class TestPercentile:
    def test_median_odd(self):
        assert percentile([3, 1, 2], 50) == 2

    def test_interpolation(self):
        assert percentile([0, 10], 25) == pytest.approx(2.5)

    def test_extremes(self):
        assert percentile([5, 1, 9], 0) == 1
        assert percentile([5, 1, 9], 100) == 9

    def test_single_value(self):
        assert percentile([4], 73) == 4

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_empty_raises_typed_error(self):
        """The empty-input error is distinguishable from bad arguments."""
        with pytest.raises(EmptyDataError):
            percentile([], 50)
        with pytest.raises(ValueError) as exc:
            percentile([1], 101)
        assert not isinstance(exc.value, EmptyDataError)

    def test_empty_with_default(self):
        assert percentile([], 50, default=0.0) == 0.0
        assert percentile([], 99, default=math.nan) is not None
        # A provided default never shadows real data.
        assert percentile([7.0], 50, default=0.0) == 7.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    @given(values=floats, q=st.floats(min_value=0, max_value=100))
    def test_within_bounds(self, values, q):
        p = percentile(values, q)
        assert min(values) <= p <= max(values)

    @given(values=floats)
    def test_monotone_in_q(self, values):
        assert percentile(values, 25) <= percentile(values, 75)


class TestBoxStats:
    def test_ordering_invariant(self):
        stats = BoxStats.from_values(range(100))
        assert stats.p5 <= stats.p25 <= stats.median <= stats.p75 <= stats.p99

    def test_count_and_mean(self):
        stats = BoxStats.from_values([1, 2, 3])
        assert stats.count == 3
        assert stats.mean == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BoxStats.from_values([])

    def test_empty_raises_typed_error(self):
        with pytest.raises(EmptyDataError):
            BoxStats.from_values([])

    def test_empty_safe_variant(self):
        stats = BoxStats.from_values_or_empty([])
        assert stats.count == 0
        assert math.isnan(stats.median)
        # Non-empty input goes through the normal path.
        assert BoxStats.from_values_or_empty([1.0, 2.0]).count == 2

    def test_empty_row_renders(self):
        row = BoxStats.empty().row("latency", "s")
        assert "latency" in row and "no data" in row

    def test_row_format(self):
        row = BoxStats.from_values([1.0]).row("label", "s")
        assert "label" in row and "median" in row


class TestCdfAndCv:
    def test_cdf_points(self):
        points = cdf_points([3, 1, 2])
        assert points == [(1, pytest.approx(1 / 3)), (2, pytest.approx(2 / 3)), (3, 1.0)]

    def test_cdf_empty(self):
        assert cdf_points([]) == []

    def test_cv_zero_uniform(self):
        assert coefficient_of_variation([5, 5, 5]) == 0.0

    def test_cv_known_value(self):
        assert coefficient_of_variation([1, 3]) == pytest.approx(0.5)

    def test_cv_empty_and_zero_mean(self):
        assert coefficient_of_variation([]) == 0.0
        assert coefficient_of_variation([0, 0]) == 0.0


class TestViolationAuditor:
    def build(self):
        topo = build_cluster(4, racks=2, memory_mb=8 * 1024)
        return ClusterState(topo), ConstraintManager(topo)

    def test_clean_placement_no_violations(self):
        state, manager = self.build()
        manager.register_application(
            make_lra("a", constraints=[anti_affinity("w", "w", "node")])
        )
        state.allocate("a/0", "n00000", Resource(1024, 1), ("w",), "a")
        state.allocate("a/1", "n00001", Resource(1024, 1), ("w",), "a")
        report = evaluate_violations(state, manager=manager)
        assert report.subject_containers == 2
        assert report.violating_containers == 0
        assert report.violation_fraction == 0.0

    def test_detects_anti_affinity_violation(self):
        state, manager = self.build()
        manager.register_application(
            make_lra("a", constraints=[anti_affinity("w", "w", "node")])
        )
        state.allocate("a/0", "n00000", Resource(1024, 1), ("w",), "a")
        state.allocate("a/1", "n00000", Resource(1024, 1), ("w",), "a")
        report = evaluate_violations(state, manager=manager)
        assert report.violating_containers == 2
        assert report.violation_fraction == 1.0
        assert report.total_extent == pytest.approx(2.0)
        assert len(report.records) == 2

    def test_extent_scales_with_severity(self):
        """Footnote 3: a bigger overshoot is a worse violation."""
        state, manager = self.build()
        constraint = cardinality("w", "w", 0, 1, "node")
        manager.register_application(make_lra("a", constraints=[constraint]))
        for i in range(4):
            state.allocate(f"a/{i}", "n00000", Resource(1024, 1), ("w",), "a")
        heavy = evaluate_violations(state, manager=manager).total_extent
        state.release("a/3")
        light = evaluate_violations(state, manager=manager).total_extent
        assert heavy > light

    def test_short_running_containers_ignored(self):
        state, manager = self.build()
        manager.register_application(
            make_lra("a", constraints=[anti_affinity("task", "task", "node")])
        )
        state.allocate("t/0", "n00000", Resource(1024, 1), ("task",), "bg",
                       long_running=False)
        state.allocate("t/1", "n00000", Resource(1024, 1), ("task",), "bg",
                       long_running=False)
        report = evaluate_violations(state, manager=manager)
        assert report.subject_containers == 0

    def test_unconstrained_containers_not_counted(self):
        state, manager = self.build()
        manager.register_application(
            make_lra("a", constraints=[anti_affinity("w", "w", "node")])
        )
        state.allocate("x/0", "n00000", Resource(1024, 1), ("other",), "x")
        report = evaluate_violations(state, manager=manager)
        assert report.subject_containers == 0

    def test_explicit_constraint_list(self):
        state, _ = self.build()
        state.allocate("a/0", "n00000", Resource(1024, 1), ("w",), "a")
        state.allocate("a/1", "n00000", Resource(1024, 1), ("w",), "a")
        report = evaluate_violations(state, [anti_affinity("w", "w", "node")])
        assert report.violating_containers == 2

    def test_needs_constraints_or_manager(self):
        state, _ = self.build()
        with pytest.raises(ValueError):
            evaluate_violations(state)

    def test_compound_satisfied_by_any_conjunct(self):
        state, _ = self.build()
        state.allocate("c/0", "n00000", Resource(1024, 1), ("cache",), "c")
        state.allocate("a/0", "n00002", Resource(1024, 1), ("w",), "a")  # same rack
        comp = CompoundConstraint(
            ((affinity("w", "cache", "node"),), (affinity("w", "cache", "rack"),))
        )
        report = evaluate_violations(state, [], compound=[comp])
        assert report.subject_containers == 1
        assert report.violating_containers == 0

    def test_compound_violated_when_all_conjuncts_fail(self):
        state, _ = self.build()
        state.allocate("c/0", "n00000", Resource(1024, 1), ("cache",), "c")
        state.allocate("a/0", "n00001", Resource(1024, 1), ("w",), "a")  # other rack
        comp = CompoundConstraint(
            ((affinity("w", "cache", "node"),), (affinity("w", "cache", "rack"),))
        )
        report = evaluate_violations(state, [], compound=[comp])
        assert report.violating_containers == 1
