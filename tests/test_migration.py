"""Tests for the §5.4 container-migration extension."""

from __future__ import annotations

import pytest

from repro import (
    ClusterState,
    ConstraintManager,
    Resource,
    affinity,
    anti_affinity,
    build_cluster,
    evaluate_violations,
)
from repro.core.migration import Migration, MigrationPlan, MigrationPlanner
from tests.helpers import make_lra


def build(num_nodes=6):
    topo = build_cluster(num_nodes, racks=2, memory_mb=8 * 1024, vcores=8)
    return ClusterState(topo), ConstraintManager(topo)


class TestPlanner:
    def test_repairs_anti_affinity_violation(self):
        state, manager = build()
        manager.register_application(
            make_lra("a", constraints=[anti_affinity("w", "w", "node")])
        )
        # Bad placement: both workers on one node.
        state.allocate("a/0", "n00000", Resource(1024, 1), ("w",), "a")
        state.allocate("a/1", "n00000", Resource(1024, 1), ("w",), "a")
        planner = MigrationPlanner()
        plan = planner.plan(state, manager)
        assert len(plan) == 1
        move = plan.moves[0]
        assert move.from_node == "n00000"
        assert move.to_node != "n00000"
        assert move.extent_gain > 0
        # Planning must not mutate the state.
        assert state.container("a/0").node_id == "n00000"
        assert state.container("a/1").node_id == "n00000"

    def test_apply_executes_moves(self):
        state, manager = build()
        manager.register_application(
            make_lra("a", constraints=[anti_affinity("w", "w", "node")])
        )
        state.allocate("a/0", "n00000", Resource(1024, 1), ("w",), "a")
        state.allocate("a/1", "n00000", Resource(1024, 1), ("w",), "a")
        planner = MigrationPlanner()
        plan = planner.plan(state, manager)
        planner.apply(state, plan)
        report = evaluate_violations(state, manager=manager)
        assert report.violating_containers == 0

    def test_no_moves_when_clean(self):
        state, manager = build()
        manager.register_application(
            make_lra("a", constraints=[anti_affinity("w", "w", "node")])
        )
        state.allocate("a/0", "n00000", Resource(1024, 1), ("w",), "a")
        state.allocate("a/1", "n00001", Resource(1024, 1), ("w",), "a")
        assert len(MigrationPlanner().plan(state, manager)) == 0

    def test_migration_cost_gates_marginal_moves(self):
        """A gain below the migration cost must not trigger a move."""
        state, manager = build()
        manager.register_application(
            make_lra("a", constraints=[anti_affinity("w", "w", "node")])
        )
        state.allocate("a/0", "n00000", Resource(1024, 1), ("w",), "a")
        state.allocate("a/1", "n00000", Resource(1024, 1), ("w",), "a")
        expensive = MigrationPlanner(migration_cost=10.0)
        assert len(expensive.plan(state, manager)) == 0

    def test_max_moves_limits_churn(self):
        state, manager = build(num_nodes=10)
        manager.register_application(
            make_lra("a", containers=6, constraints=[anti_affinity("w", "w", "node")])
        )
        for i in range(6):
            state.allocate(f"a/{i}", "n00000", Resource(512, 1), ("w",), "a")
        plan = MigrationPlanner(max_moves=2).plan(state, manager)
        assert len(plan) <= 2

    def test_affinity_repair_moves_toward_target(self):
        state, manager = build()
        manager.register_application(
            make_lra("a", containers=1, tags={"w"},
                     constraints=[affinity("w", "cache", "node")])
        )
        state.allocate("cache/0", "n00003", Resource(1024, 1), ("cache",), "c")
        state.allocate("a/0", "n00000", Resource(1024, 1),
                       ("w", "appID:a"), "a")
        planner = MigrationPlanner()
        plan = planner.plan(state, manager)
        assert len(plan) == 1
        assert plan.moves[0].to_node == "n00003"

    def test_total_gain(self):
        plan = MigrationPlan([
            Migration("c1", "a", "b", 1.0),
            Migration("c2", "a", "b", 0.5),
        ])
        assert plan.total_gain == pytest.approx(1.5)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            MigrationPlanner(migration_cost=-1)
        with pytest.raises(ValueError):
            MigrationPlanner(max_moves=0)

    def test_short_running_containers_not_migrated(self):
        state, manager = build()
        manager.register_application(
            make_lra("a", constraints=[anti_affinity("task", "task", "node")])
        )
        state.allocate("t/0", "n00000", Resource(1024, 1), ("task",), "bg",
                       long_running=False)
        state.allocate("t/1", "n00000", Resource(1024, 1), ("task",), "bg",
                       long_running=False)
        assert len(MigrationPlanner().plan(state, manager)) == 0
