"""The ``.mtrc`` columnar trace container (``repro.obs.mtrc``).

Round-trip fidelity against JSONL, the streaming reader's error contract
(clean EOF, truncated tail tolerance, mid-file corruption), transparent
consumption through ``read_trace`` / ``iter_trace``, the ``repro
trace-convert`` CLI, and the size win the format exists for.
"""

from __future__ import annotations

import json
import struct
import zlib

import pytest

from repro.obs.events import TraceEvent
from repro.obs.mtrc import (
    CHUNK_EVENTS,
    MTRC_MAGIC,
    MtrcFormatError,
    MtrcReader,
    MtrcSink,
    is_mtrc_file,
    iter_mtrc,
    read_mtrc,
    write_mtrc,
)
from repro.obs.report import TraceFileError, iter_trace, read_trace
from repro.obs.trace import JsonlSink, Tracer, open_trace_sink


def _events(n: int) -> list[dict]:
    """A representative mixed stream: varying kinds, optional time/wall,
    nested data, unicode."""
    out = []
    for i in range(n):
        obj = {"kind": f"task.{('submit', 'allocate', 'release')[i % 3]}",
               "seq": i}
        if i % 4 != 3:
            obj["time"] = i * 0.5
        if i % 2 == 0:
            obj["data"] = {"task_id": f"t-{i}", "rack": f"ra—ck-{i % 5}",
                           "nested": {"mem": 1024, "tags": ["a", "b"]}}
        if i % 7 == 0:
            obj["wall"] = {"duration_s": 0.001 * i}
        out.append(obj)
    return out


class TestRoundTrip:
    def test_write_read_equality(self, tmp_path):
        events = _events(100)
        path = tmp_path / "t.mtrc"
        assert write_mtrc(path, events) == 100
        assert read_mtrc(path) == events

    def test_multi_chunk_round_trip(self, tmp_path):
        events = _events(50)
        path = tmp_path / "t.mtrc"
        sink = MtrcSink(path, chunk_events=7)  # force many chunks
        for obj in events:
            sink.append_obj(obj)
        sink.close()
        assert read_mtrc(path) == events

    def test_tracer_sink_matches_jsonl_sink(self, tmp_path):
        mpath, jpath = tmp_path / "t.mtrc", tmp_path / "t.jsonl"
        for sink_cls, path in ((MtrcSink, mpath), (JsonlSink, jpath)):
            tracer = Tracer([sink_cls(path)])
            for i in range(40):
                tracer.emit("task.submit", time=float(i),
                            data={"task_id": f"t-{i}"})
            tracer.close()
        jsonl_events = [json.loads(line) for line in open(jpath)]
        assert read_mtrc(mpath) == jsonl_events

    def test_event_objects_round_trip(self, tmp_path):
        path = tmp_path / "t.mtrc"
        sink = MtrcSink(path)
        event = TraceEvent(kind="lra.place", seq=0, time=4.0,
                           data={"app_id": "a", "placements": [["c0", "n1"]]},
                           wall={"solve_s": 0.01})
        sink.emit(event)
        sink.close()
        assert read_mtrc(path) == [event.to_obj()]

    def test_open_trace_sink_selects_by_extension(self, tmp_path):
        assert isinstance(open_trace_sink(tmp_path / "a.mtrc"), MtrcSink)
        assert isinstance(open_trace_sink(tmp_path / "a.jsonl"), JsonlSink)

    def test_is_mtrc_file_sniffs_magic(self, tmp_path):
        path = tmp_path / "renamed.jsonl"  # wrong extension, real mtrc
        write_mtrc(path, _events(3))
        assert is_mtrc_file(path)
        other = tmp_path / "t.mtrc"
        other.write_text('{"kind": "x", "seq": 0}\n')
        assert not is_mtrc_file(other)
        assert not is_mtrc_file(tmp_path / "missing.mtrc")


class TestErrorContract:
    def test_empty_or_bad_magic_raises(self, tmp_path):
        path = tmp_path / "t.mtrc"
        path.write_bytes(b"")
        with pytest.raises(MtrcFormatError):
            read_mtrc(path)
        path.write_bytes(b"NOPE" + b"\x00" * 4)
        with pytest.raises(MtrcFormatError):
            read_mtrc(path)

    def test_newer_version_raises(self, tmp_path):
        path = tmp_path / "t.mtrc"
        path.write_bytes(struct.pack("<4sHH", MTRC_MAGIC, 99, 0))
        with pytest.raises(MtrcFormatError, match="version"):
            read_mtrc(path)

    def test_truncated_tail_is_tolerated(self, tmp_path):
        """The crashed-run shape: events up to the last complete chunk are
        served, iteration ends cleanly, ``truncated`` is flagged."""
        events = _events(30)
        path = tmp_path / "t.mtrc"
        sink = MtrcSink(path, chunk_events=10)
        for obj in events:
            sink.append_obj(obj)
        sink.close()
        data = path.read_bytes()
        path.write_bytes(data[:-11])  # cut into the final chunk

        reader = MtrcReader(path)
        recovered = list(reader)
        assert reader.truncated
        assert recovered == events[:20]  # both complete chunks survive

    def test_corrupt_mid_file_raises(self, tmp_path):
        events = _events(30)
        path = tmp_path / "t.mtrc"
        sink = MtrcSink(path, chunk_events=10)
        for obj in events:
            sink.append_obj(obj)
        sink.close()
        data = bytearray(path.read_bytes())
        # Flip bytes inside the *first* chunk's blob (after header+length).
        for offset in range(16, 24):
            data[offset] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(MtrcFormatError, match="corrupt chunk mid-file"):
            list(MtrcReader(path))


class TestTransparentConsumption:
    def test_read_trace_accepts_both_containers(self, tmp_path):
        events = _events(25)
        mpath, jpath = tmp_path / "t.mtrc", tmp_path / "t.jsonl"
        write_mtrc(mpath, events)
        jpath.write_text(
            "".join(json.dumps(e, sort_keys=True) + "\n" for e in events)
        )
        assert read_trace(str(mpath)).events == events
        assert read_trace(str(jpath)).events == events
        assert list(iter_trace(str(mpath))) == events

    def test_read_trace_flags_mtrc_truncation(self, tmp_path):
        path = tmp_path / "t.mtrc"
        sink = MtrcSink(path, chunk_events=5)
        for obj in _events(10):
            sink.append_obj(obj)
        sink.close()
        path.write_bytes(path.read_bytes()[:-3])
        parsed = read_trace(str(path))
        assert parsed.truncated
        assert len(parsed.events) == 5

    def test_read_trace_rejects_empty_mtrc(self, tmp_path):
        path = tmp_path / "t.mtrc"
        write_mtrc(path, [])
        with pytest.raises(TraceFileError):
            read_trace(str(path))


class TestConvertCli:
    def _trace(self, tmp_path, n=60):
        jpath = tmp_path / "t.jsonl"
        tracer = Tracer([JsonlSink(jpath)])
        for i in range(n):
            tracer.emit("task.submit", time=float(i),
                        data={"task_id": f"t-{i}", "mem": 1024})
        tracer.close()
        return jpath

    def test_jsonl_to_mtrc_and_back(self, tmp_path, capsys):
        from repro.cli import main

        jpath = self._trace(tmp_path)
        mpath = tmp_path / "out.mtrc"
        back = tmp_path / "back.jsonl"
        assert main(["trace-convert", str(jpath), str(mpath)]) == 0
        assert is_mtrc_file(mpath)
        assert main(["trace-convert", str(mpath), str(back)]) == 0
        # Whitespace may differ; the decoded event stream must not.
        assert [json.loads(line) for line in open(back)] == [
            json.loads(line) for line in open(jpath)
        ]
        out = capsys.readouterr().out
        assert "events" in out

    def test_convert_missing_input_fails(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["trace-convert", str(tmp_path / "nope.jsonl"),
                     str(tmp_path / "out.mtrc")]) == 1
        assert capsys.readouterr().err


class TestCompression:
    def test_size_win_on_multi_chunk_trace(self, tmp_path):
        """The acceptance target: ≥10× smaller than the JSONL encoding of
        the same stream (realistic repetitive event shapes)."""
        mpath, jpath = tmp_path / "t.mtrc", tmp_path / "t.jsonl"
        tracer = Tracer([MtrcSink(mpath), JsonlSink(jpath)])
        for i in range(3 * CHUNK_EVENTS // 2):  # spans multiple chunks
            tracer.emit(
                "task.allocate", time=float(i),
                data={"task_id": f"s{i // 600}-{i % 600}",
                      "app_id": f"job-{i % 13}", "node_id": f"node-{i % 200}",
                      "mem_mb": 1024, "vcores": 1},
            )
        tracer.close()
        jsonl_size = jpath.stat().st_size
        mtrc_size = mpath.stat().st_size
        assert mtrc_size * 10 <= jsonl_size, (
            f"mtrc {mtrc_size}B vs jsonl {jsonl_size}B — "
            f"only {jsonl_size / mtrc_size:.1f}x"
        )

    def test_chunks_are_zlib_compressed(self, tmp_path):
        path = tmp_path / "t.mtrc"
        write_mtrc(path, _events(20))
        data = path.read_bytes()
        (length,) = struct.unpack_from("<I", data, 8)
        assert zlib.decompress(data[12:12 + length])
