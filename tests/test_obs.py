"""Tests for the ``repro.obs`` observability subsystem.

Covers the tentpole guarantees of the obs redesign: deterministic trace
streams (same seed ⇒ byte-identical canonical JSONL), metrics snapshot
correctness, decision-audit contents for affinity / anti-affinity pruning,
the disabled-tracer no-op, and the ``SolverStats`` migration aliases.
"""

from __future__ import annotations

import json
import warnings

import pytest

from repro import (
    Resource,
    SerialScheduler,
    TaskRequest,
    build_cluster,
)
from repro.core.constraints import affinity, anti_affinity
from repro.obs import (
    EventKind,
    JsonlSink,
    MemorySink,
    Metrics,
    SolverStats,
    TraceEvent,
    Tracer,
    canonical,
)
from repro.obs.trace import (
    configure_from_env,
    get_tracer,
    set_tracer,
)
from repro.obs.metrics import get_metrics, set_metrics
from repro.sim import ClusterSimulation, SimConfig
from tests.helpers import make_lra


@pytest.fixture()
def isolate_obs():
    """Save and restore the ambient tracer/metrics around a test."""
    prev_tracer = set_tracer(None)
    prev_metrics = set_metrics(Metrics())
    yield
    set_tracer(prev_tracer)
    set_metrics(prev_metrics)


def _make_sim(tracer=None, metrics=None):
    topo = build_cluster(6, racks=2, memory_mb=8 * 1024, vcores=8)
    config = SimConfig(scheduling_interval_s=5.0, horizon_s=60.0)
    return ClusterSimulation(
        topo, SerialScheduler(), config=config, tracer=tracer, metrics=metrics
    )


def _drive(sim):
    sim.submit_lra(
        make_lra(
            "web", containers=2, tags={"web"},
            constraints=(anti_affinity("web", "web", "node"),),
        ),
        at=1.0,
    )
    sim.submit_lra(make_lra("db", containers=1, tags={"db"}), at=2.0,
                   duration_s=20.0)
    for i in range(5):
        sim.submit_task(
            TaskRequest(f"t{i}", "batch", Resource(512, 1), duration_s=4.0),
            at=0.5 + i,
        )
    sim.run(40.0)


class TestTraceEvent:
    def test_to_json_is_sorted_and_compact(self):
        event = TraceEvent(kind="lra.submit", seq=3, time=1.5,
                           data={"b": 1, "a": 2})
        text = event.to_json()
        assert text.index('"a"') < text.index('"b"')
        assert ", " not in text

    def test_canonical_json_strips_wall(self):
        event = TraceEvent(kind="solver.solve", seq=0, time=None,
                           data={"nodes": 4}, wall={"time_total_s": 0.123})
        assert "wall" in event.to_json()
        assert "wall" not in event.canonical_json()
        assert json.loads(event.canonical_json())["data"] == {"nodes": 4}

    def test_canonical_module_fn_strips_wall_from_jsonl(self):
        tracer = Tracer([sink := MemorySink()])
        tracer.emit("x", time=1.0, data={"k": 1}, wall={"elapsed": 9.9})
        tracer.emit("y", time=2.0, data={"k": 2})
        raw = sink.jsonl()
        assert "elapsed" in raw
        stripped = canonical(raw)
        assert "elapsed" not in stripped and "wall" not in stripped
        assert stripped == sink.jsonl(canonical=True)


class TestTracer:
    def test_disabled_tracer_is_noop(self):
        sink = MemorySink()
        tracer = Tracer([sink], enabled=False)
        assert tracer.emit("x", data={"heavy": 1}) is None
        assert len(sink) == 0

    def test_ambient_default_is_disabled(self):
        assert get_tracer().enabled is False

    def test_seq_gives_total_order(self):
        tracer = Tracer([sink := MemorySink()])
        for _ in range(5):
            tracer.emit("x")
        assert [e.seq for e in sink.events] == [0, 1, 2, 3, 4]

    def test_jsonl_sink_writes_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer([JsonlSink(path)])
        tracer.emit("a", time=0.0, data={"n": 1})
        tracer.emit("b", time=1.0)
        tracer.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["kind"] == "a"

    def test_configure_from_env_noop_when_unset(self, isolate_obs):
        assert configure_from_env({"MEDEA_TRACE": ""}) is None
        assert configure_from_env({"MEDEA_TRACE": "0"}) is None
        assert get_tracer().enabled is False


class TestDisabledTracingSim:
    def test_sim_with_disabled_tracer_emits_nothing(self, isolate_obs):
        sink = MemorySink()
        tracer = Tracer([sink], enabled=False)
        sim = _make_sim(tracer=tracer, metrics=Metrics())
        _drive(sim)
        assert len(sink) == 0


class TestTraceDeterminism:
    def test_same_seed_runs_are_byte_identical(self, isolate_obs):
        streams = []
        for _ in range(2):
            sink = MemorySink()
            sim = _make_sim(tracer=Tracer([sink]), metrics=Metrics())
            _drive(sim)
            assert len(sink) > 0
            streams.append(sink.jsonl(canonical=True))
        assert streams[0] == streams[1]

    def test_env_configured_runs_are_byte_identical(self, isolate_obs, tmp_path):
        texts = []
        for run in range(2):
            path = tmp_path / f"run{run}.jsonl"
            set_tracer(None)
            tracer = configure_from_env(
                {"MEDEA_TRACE": "1", "MEDEA_TRACE_OUT": str(path)}
            )
            assert tracer is not None and tracer.enabled
            metrics = set_metrics(Metrics())
            try:
                _drive(_make_sim())
            finally:
                get_tracer().close()
                set_metrics(metrics)
            texts.append(canonical(path.read_text()))
        assert texts[0] and texts[0] == texts[1]

    def test_lifecycle_kinds_present(self, isolate_obs):
        sink = MemorySink()
        sim = _make_sim(tracer=Tracer([sink]), metrics=Metrics())
        _drive(sim)
        kinds = set(sink.kinds())
        for expected in (
            EventKind.ENGINE_DISPATCH,
            EventKind.SIM_HEARTBEAT,
            EventKind.CYCLE_START,
            EventKind.CYCLE_END,
            EventKind.LRA_SUBMIT,
            EventKind.LRA_PLACE,
            EventKind.LRA_COMPLETE,
            EventKind.SCHEDULER_PLACE,
            EventKind.TASK_SUBMIT,
            EventKind.TASK_ALLOCATE,
            EventKind.TASK_RELEASE,
        ):
            assert expected in kinds, f"missing {expected}"

    def test_wall_fields_segregated(self, isolate_obs):
        sink = MemorySink()
        sim = _make_sim(tracer=Tracer([sink]), metrics=Metrics())
        _drive(sim)
        for event in sink.of_kind(EventKind.CYCLE_END):
            assert "solve_time_s" in (event.wall or {})
            assert "solve_time_s" not in event.data


class TestMetrics:
    def test_counter_labels_and_totals(self):
        metrics = Metrics()
        metrics.counter("c").inc(2, q="a")
        metrics.counter("c").inc(q="a")
        metrics.counter("c").inc(5, q="b")
        counter = metrics.counter("c")
        assert counter.value(q="a") == 3
        assert counter.total() == 8
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_and_add(self):
        gauge = Metrics().gauge("g")
        gauge.set(4.0)
        gauge.add(1.5)
        assert gauge.value() == 5.5

    def test_timer_observe_and_context(self):
        metrics = Metrics()
        timer = metrics.timer("t")
        timer.observe(0.5, phase="x")
        timer.observe(1.5, phase="x")
        stat = timer.stat(phase="x")
        assert stat.count == 2
        assert stat.mean_s == pytest.approx(1.0)
        assert stat.min_s == 0.5 and stat.max_s == 1.5
        with timer.time(phase="y"):
            pass
        assert timer.stat(phase="y").count == 1

    def test_snapshot_shape(self):
        metrics = Metrics()
        metrics.counter("n").inc(3, scheduler="Serial")
        metrics.gauge("g").set(7)
        metrics.timer("t").observe(0.25)
        snap = metrics.snapshot()
        assert snap["counters"]["n"] == {"scheduler=Serial": 3}
        assert snap["gauges"]["g"] == {"": 7.0}
        assert snap["timers"]["t"][""]["count"] == 1
        # Snapshot is JSON-serialisable as-is (the CI artifact format).
        json.dumps(snap)

    def test_sim_records_lifecycle_counters(self, isolate_obs):
        metrics = Metrics()
        sim = _make_sim(metrics=metrics)
        _drive(sim)
        snap = metrics.snapshot()
        assert snap["counters"]["lra_submitted_total"][""] == 2
        assert snap["counters"]["lra_placed_total"][""] == 2
        assert snap["counters"]["task_allocated_total"]["queue=default"] == 5
        place_stats = snap["timers"]["scheduler_place_seconds"]
        assert place_stats["scheduler=Serial"]["count"] >= 1


class TestSolverStatsMigration:
    def test_deprecated_alias_warns_and_is_same_class(self):
        with pytest.warns(DeprecationWarning, match="moved to repro.obs"):
            from repro.solver import SolverStats as LegacyStats
        assert LegacyStats is SolverStats

    def test_model_reexport_still_works(self):
        from repro.solver.model import SolverStats as ModelStats

        assert ModelStats is SolverStats

    def test_record_to_folds_into_metrics(self):
        stats = SolverStats(
            backend="bnb", nodes_explored=7, lp_solves=3,
            time_lp_s=0.2, time_total_s=0.5,
        )
        metrics = Metrics()
        stats.record_to(metrics, scheduler="MEDEA-ILP")
        labels = {"backend": "bnb", "scheduler": "MEDEA-ILP"}
        assert metrics.counter("solver_nodes_explored_total").value(**labels) == 7
        assert metrics.counter("solver_lp_solves_total").value(**labels) == 3
        timer = metrics.timer("solver_phase_seconds")
        assert timer.stat(phase="lp", **labels).total_s == pytest.approx(0.2)
        assert timer.stat(phase="total", **labels).total_s == pytest.approx(0.5)


class TestDecisionAudit:
    def _place(self, scheduler, lra, nodes=4):
        from repro import ClusterState, ConstraintManager

        topo = build_cluster(nodes, racks=2, memory_mb=8 * 1024, vcores=8)
        state = ClusterState(topo)
        manager = ConstraintManager(topo)
        manager.register_application(lra)
        return scheduler.place([lra], state, manager)

    def test_affinity_pruning_recorded(self):
        # Affinity toward a tag hosted nowhere: every candidate violates.
        lra = make_lra(
            "aff", containers=1, tags={"s"},
            constraints=(affinity("s", "hb", "node"),),
        )
        result = self._place(SerialScheduler(audit=True), lra)
        audit = result.audit
        assert audit is not None and audit.scheduler == "Serial"
        decision = audit.decision_for("aff/c0")
        assert decision.considered == 4
        assert decision.feasible == 0
        pruned = decision.pruned_by("constraint")
        assert len(pruned) == 4
        assert all("hb" in p.constraint for p in pruned)
        assert all(p.extent > 0 for p in pruned)
        # Soft constraints: still placed, on a least-bad node.
        assert decision.chosen_node is not None
        assert decision.score_terms["violation_delta"] > 0

    def test_anti_affinity_pruning_recorded(self):
        lra = make_lra(
            "anti", containers=2, tags={"a"},
            constraints=(anti_affinity("a", "a", "node"),),
        )
        result = self._place(SerialScheduler(audit=True), lra)
        audit = result.audit
        first, second = audit.decisions_of("anti")
        assert first.chosen_node is not None
        # The second container must avoid the first one's node...
        conflicted = second.pruned_by("constraint")
        assert [p.node_id for p in conflicted] == [first.chosen_node]
        assert second.chosen_node != first.chosen_node
        # ...and the responsible constraint is named in canonical notation.
        assert second.pruning_constraints() == [p.constraint for p in conflicted][:1]

    def test_audit_off_by_default(self):
        lra = make_lra("plain", containers=1)
        result = self._place(SerialScheduler(), lra)
        assert result.audit is None

    def test_capacity_pruning_recorded(self):
        lra = make_lra("big", containers=1, memory_mb=7 * 1024)
        scheduler = SerialScheduler(audit=True)
        from repro import ClusterState, ConstraintManager

        topo = build_cluster(2, racks=1, memory_mb=8 * 1024, vcores=8)
        state = ClusterState(topo)
        manager = ConstraintManager(topo)
        # Pre-load node 0 so it cannot fit the big container.
        state.allocate("filler", "n00000", Resource(4 * 1024, 1),
                       frozenset({"f"}), "fill")
        result = scheduler.place([lra], state, manager)
        decision = result.audit.decision_for("big/c0")
        assert [p.node_id for p in decision.pruned_by("capacity")] == ["n00000"]
        assert decision.chosen_node == "n00001"


class TestClockShims:
    def test_positional_now_warns_but_works(self):
        from repro import CapacityScheduler, ClusterState, MedeaScheduler

        topo = build_cluster(2)
        state = ClusterState(topo)
        medea = MedeaScheduler(
            state, SerialScheduler(), CapacityScheduler(state),
            metrics=Metrics(),
        )
        with pytest.warns(DeprecationWarning, match="positionally"):
            medea.submit_lra(make_lra("x", containers=1), 3.0)
        assert medea.outcomes["x"].submit_time == 3.0
        with pytest.warns(DeprecationWarning, match="positionally"):
            medea.run_cycle(4.0)
        assert medea.outcomes["x"].placed_time == 4.0

    def test_too_many_positionals_rejected(self):
        from repro import CapacityScheduler, ClusterState, MedeaScheduler

        topo = build_cluster(2)
        state = ClusterState(topo)
        medea = MedeaScheduler(
            state, SerialScheduler(), CapacityScheduler(state),
            metrics=Metrics(),
        )
        with pytest.raises(TypeError):
            medea.run_cycle(1.0, 2.0)

    def test_legacy_place_override_shimmed(self):
        from repro import ClusterState, ConstraintManager
        from repro.core.scheduler import LRAScheduler, PlacementResult

        class LegacyScheduler(LRAScheduler):
            name = "legacy"

            def place(self, requests, state, manager):  # old 3-arg form
                return PlacementResult()

        topo = build_cluster(2)
        state = ClusterState(topo)
        scheduler = LegacyScheduler()
        with pytest.warns(DeprecationWarning, match="keyword-only 'now'"):
            result = scheduler.timed_place(
                [make_lra("l", containers=1)], state,
                ConstraintManager(topo), now=5.0, metrics=Metrics(),
            )
        assert isinstance(result, PlacementResult)

    def test_keyword_now_no_warning(self):
        from repro import ClusterState, ConstraintManager

        topo = build_cluster(2)
        state = ClusterState(topo)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            SerialScheduler().timed_place(
                [make_lra("k", containers=1)], state,
                ConstraintManager(topo), now=1.0, metrics=Metrics(),
            )


class TestPublicApi:
    def test_top_level_reexports(self):
        import repro

        for name in ("Tracer", "Metrics", "TraceEvent", "MemorySink",
                     "JsonlSink", "SolverStats", "DecisionAudit"):
            assert name in repro.__all__
            assert getattr(repro, name) is not None

    def test_report_renders_trace(self, tmp_path, isolate_obs):
        from repro.obs.report import render_trace_report

        path = tmp_path / "t.jsonl"
        tracer = Tracer([JsonlSink(path)])
        sim = _make_sim(tracer=tracer, metrics=Metrics())
        _drive(sim)
        tracer.close()
        text = render_trace_report(str(path))
        assert "lra.place" in text
        assert "TOTAL" in text

    def test_cli_trace_report(self, tmp_path, capsys, isolate_obs):
        from repro.cli import main

        path = tmp_path / "t.jsonl"
        tracer = Tracer([JsonlSink(path)])
        sim = _make_sim(tracer=tracer, metrics=Metrics())
        _drive(sim)
        tracer.close()
        assert main(["trace-report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "engine.dispatch" in out

    def test_cli_trace_report_missing_file(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["trace-report", str(tmp_path / "nope.jsonl")]) == 1
