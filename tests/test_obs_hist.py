"""Tests for the mergeable latency histogram (``repro.obs.hist``).

The histogram underpins every latency number the latency-under-load
plane reports (timer percentiles, the loadgen sweep, the request-path
``/metrics`` exposition), so the properties asserted here — bounded
relative error, exact merge, byte-stable serialization, deterministic
bucket arithmetic — are load-bearing for the determinism contract.
"""

from __future__ import annotations

import json
import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.hist import (
    DEFAULT_MIN_VALUE_S,
    DEFAULT_SUBBUCKETS,
    LatencyHistogram,
    merge_histograms,
)


def _exact_percentile(values, q):
    """Nearest-rank percentile on the exact sample (the oracle)."""
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


class TestBucketArithmetic:
    def test_index_zero_for_subresolution_values(self):
        hist = LatencyHistogram()
        assert hist.bucket_index(0.0) == 0
        assert hist.bucket_index(DEFAULT_MIN_VALUE_S / 2) == 0

    def test_bounds_bracket_the_value(self):
        hist = LatencyHistogram()
        for value in (1e-6, 3.7e-5, 1e-3, 0.25, 1.0, 17.3, 9000.0):
            index = hist.bucket_index(value)
            low, high = hist.bucket_bounds(index)
            assert low <= value < high or index == 0

    def test_relative_error_bound(self):
        hist = LatencyHistogram()
        assert hist.relative_error == pytest.approx(
            1 / (2 * DEFAULT_SUBBUCKETS)
        )
        rng = random.Random(13)
        for _ in range(2_000):
            value = 10 ** rng.uniform(-5.5, 3.5)
            mid = hist.bucket_mid(hist.bucket_index(value))
            assert abs(mid - value) / value <= hist.relative_error + 1e-12

    @settings(max_examples=300, deadline=None)
    @given(st.floats(min_value=1e-9, max_value=1e6,
                     allow_nan=False, allow_infinity=False))
    def test_property_bounds_contain_value(self, value):
        hist = LatencyHistogram()
        index = hist.bucket_index(value)
        low, high = hist.bucket_bounds(index)
        if index == 0:
            assert value < high
        else:
            assert low <= value < high

    @settings(max_examples=200, deadline=None)
    @given(st.floats(min_value=1e-9, max_value=1e6,
                     allow_nan=False, allow_infinity=False),
           st.floats(min_value=1e-9, max_value=1e6,
                     allow_nan=False, allow_infinity=False))
    def test_property_index_monotone(self, a, b):
        hist = LatencyHistogram()
        if a > b:
            a, b = b, a
        assert hist.bucket_index(a) <= hist.bucket_index(b)

    @settings(max_examples=200, deadline=None)
    @given(st.integers(min_value=0, max_value=20 * DEFAULT_SUBBUCKETS))
    def test_property_mid_round_trips_to_same_bucket(self, index):
        hist = LatencyHistogram()
        assert hist.bucket_index(hist.bucket_mid(index)) == index


class TestQuantiles:
    def test_error_bound_against_exact_sort(self):
        rng = random.Random(7)
        samples = [rng.expovariate(1 / 0.02) + 1e-4 for _ in range(5_000)]
        hist = LatencyHistogram()
        for s in samples:
            hist.record(s)
        for q in (10, 25, 50, 75, 90, 95, 99, 99.9):
            exact = _exact_percentile(samples, q)
            approx = hist.quantile(q)
            assert abs(approx - exact) / exact <= 2 * hist.relative_error, q

    def test_extremes_are_exact(self):
        hist = LatencyHistogram()
        for v in (0.003, 0.001, 0.009, 0.004):
            hist.record(v)
        assert hist.quantile(0) == pytest.approx(0.001)
        assert hist.quantile(100) == pytest.approx(0.009)
        assert hist.min_s == pytest.approx(0.001)
        assert hist.max_s == pytest.approx(0.009)

    def test_empty_histogram_is_all_zeros(self):
        hist = LatencyHistogram()
        assert hist.count == 0
        assert hist.quantile(50) == 0.0
        assert hist.mean_s == 0.0
        summary = hist.summary()
        assert summary["count"] == 0

    def test_negative_observations_clamped(self):
        hist = LatencyHistogram()
        hist.record(-1.5)
        assert hist.count == 1
        assert hist.min_s == 0.0


class TestCoordinatedOmission:
    def test_correction_backfills_missed_intervals(self):
        # One 1s stall at a 100ms target interval hides ~9 requests that
        # would have queued behind it; the corrected histogram re-adds
        # them at decaying latencies (the HDR back-fill).
        hist = LatencyHistogram()
        hist.record_corrected(1.0, expected_interval_s=0.1)
        assert hist.count == 10  # 1 real + 9 synthesized
        assert hist.max_s == pytest.approx(1.0)
        # Synthesized values step down by one interval each.
        assert hist.quantile(10) == pytest.approx(0.1, rel=0.02)

    def test_fast_observations_unaffected(self):
        plain, corrected = LatencyHistogram(), LatencyHistogram()
        for v in (0.01, 0.02, 0.05):
            plain.record(v)
            corrected.record_corrected(v, expected_interval_s=0.1)
        assert corrected.to_json() == plain.to_json()

    def test_correction_raises_tail_on_stalls(self):
        uncorrected, corrected = LatencyHistogram(), LatencyHistogram()
        rng = random.Random(3)
        for _ in range(500):
            v = rng.expovariate(1 / 0.01)
            uncorrected.record(v)
            corrected.record_corrected(v, expected_interval_s=0.01)
        # With stalls present, correction can only raise the median
        # (synthesized queueing latencies are all positive).
        assert corrected.count >= uncorrected.count
        assert corrected.quantile(50) >= 0.0

    def test_zero_interval_means_no_correction(self):
        hist = LatencyHistogram()
        hist.record_corrected(5.0, expected_interval_s=0.0)
        assert hist.count == 1


class TestMerge:
    @staticmethod
    def _structure(hist):
        """Everything but ``sum_s`` — bucket counts and extrema merge
        EXACTLY; the float running sum is only merge-order-stable to the
        last bit (addition is not associative)."""
        obj = hist.to_obj()
        obj.pop("sum_s")
        return obj

    def test_merge_is_exact(self):
        rng = random.Random(11)
        values = [rng.uniform(1e-4, 1.0) for _ in range(999)]
        whole = LatencyHistogram()
        parts = [LatencyHistogram() for _ in range(3)]
        for i, v in enumerate(values):
            whole.record(v)
            parts[i % 3].record(v)
        merged = merge_histograms(parts)
        assert self._structure(merged) == self._structure(whole)
        assert merged.sum_s == pytest.approx(whole.sum_s)
        # Quantiles derive from bucket counts alone, so they agree
        # exactly, not approximately.
        for q in (50, 95, 99):
            assert merged.quantile(q) == whole.quantile(q)

    def test_merge_associative_and_commutative(self):
        rng = random.Random(23)
        hists = []
        for _ in range(4):
            h = LatencyHistogram()
            for _ in range(200):
                h.record(rng.expovariate(1 / 0.05))
            hists.append(h)
        left = hists[0].copy().merge(hists[1]).merge(hists[2]).merge(hists[3])
        right = hists[2].copy().merge(hists[3])
        right = hists[1].copy().merge(right)
        right = hists[0].copy().merge(right)
        reversed_order = merge_histograms(reversed([h.copy() for h in hists]))
        assert (self._structure(left) == self._structure(right)
                == self._structure(reversed_order))
        for q in (50, 99):
            assert left.quantile(q) == right.quantile(q)
            assert left.quantile(q) == reversed_order.quantile(q)

    def test_merge_rejects_mismatched_geometry(self):
        a = LatencyHistogram()
        b = LatencyHistogram(subbuckets=32)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_empty_iterable_yields_empty(self):
        assert merge_histograms([]).count == 0


class TestSerialization:
    def test_byte_stable_round_trip(self):
        rng = random.Random(5)
        hist = LatencyHistogram()
        for _ in range(1_000):
            hist.record(rng.expovariate(1 / 0.03))
        encoded = hist.to_json()
        decoded = LatencyHistogram.from_json(encoded)
        assert decoded.to_json() == encoded
        assert decoded.quantile(99) == hist.quantile(99)
        # Sorted keys, compact separators: canonical JSON.
        obj = json.loads(encoded)
        assert list(obj) == sorted(obj)

    def test_round_trip_through_jsonl_and_mtrc(self, tmp_path):
        """A histogram embedded in a trace event's data survives both the
        JSONL sink and the columnar ``.mtrc`` container byte-identically."""
        from repro.obs.mtrc import read_mtrc, write_mtrc

        hist = LatencyHistogram()
        for v in (0.001, 0.004, 0.4, 0.002, 0.09):
            hist.record(v)
        event = {"kind": "request.done", "seq": 0, "time": 1.0,
                 "data": {"hist": hist.to_obj()}}

        jsonl = tmp_path / "t.jsonl"
        jsonl.write_text(json.dumps(event, sort_keys=True) + "\n")
        via_jsonl = json.loads(jsonl.read_text())["data"]["hist"]

        mtrc = tmp_path / "t.mtrc"
        write_mtrc(mtrc, [event])
        via_mtrc = read_mtrc(mtrc)[0]["data"]["hist"]

        for restored in (via_jsonl, via_mtrc):
            round_tripped = LatencyHistogram.from_obj(restored)
            assert round_tripped.to_json() == hist.to_json()

    def test_same_sequence_same_bytes(self):
        payloads = []
        for _ in range(2):
            hist = LatencyHistogram()
            rng = random.Random(42)
            for _ in range(500):
                hist.record(rng.uniform(1e-5, 10.0))
            payloads.append(hist.to_json())
        assert payloads[0] == payloads[1]

    def test_custom_geometry_round_trips(self):
        hist = LatencyHistogram(min_value_s=1e-3, subbuckets=16)
        hist.record(0.5)
        restored = LatencyHistogram.from_json(hist.to_json())
        assert restored.min_value_s == 1e-3
        assert restored.subbuckets == 16
        assert restored.to_json() == hist.to_json()


class TestCumulativeBuckets:
    def test_cumulative_counts_monotone_and_total(self):
        hist = LatencyHistogram()
        rng = random.Random(9)
        for _ in range(300):
            hist.record(rng.uniform(1e-4, 1.0))
        buckets = hist.cumulative_buckets()
        uppers = [le for le, _ in buckets]
        counts = [c for _, c in buckets]
        assert uppers == sorted(uppers)
        assert counts == sorted(counts)
        assert counts[-1] == hist.count
