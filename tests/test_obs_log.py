"""Tests for the structured run logger (``repro.obs.log``)."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs.log import (
    LEVELS,
    RunLogger,
    configure_log_from_env,
    get_run_logger,
    render_console_line,
    set_run_logger,
)


@pytest.fixture()
def isolate_log():
    """Restore the ambient run logger around a test."""
    previous = set_run_logger(None)
    yield
    set_run_logger(previous)


class TestRunLogger:
    def test_jsonl_records(self, tmp_path):
        path = tmp_path / "run.jsonl"
        logger = RunLogger(path, run_id="testrun")
        logger.info("sim", "node flip", tick=12.0, node="n3", up=False)
        logger.warning("medea", "conflict", app="lra-1")
        logger.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["run_id"] == "testrun"
        assert first["level"] == "info"
        assert first["component"] == "sim"
        assert first["msg"] == "node flip"
        assert first["tick"] == 12.0
        assert first["node"] == "n3"
        assert first["up"] is False
        assert isinstance(first["ts"], float)
        second = json.loads(lines[1])
        assert second["level"] == "warning"
        assert "tick" not in second
        # Compact sorted-keys encoding: re-serialising reproduces the line.
        assert lines[0] == json.dumps(
            first, sort_keys=True, separators=(",", ":")
        )

    def test_level_threshold_drops_records(self):
        sink = io.StringIO()
        logger = RunLogger(sink, level="warning")
        assert logger.debug("x", "nope") is None
        assert logger.info("x", "nope") is None
        assert logger.warning("x", "yes") is not None
        assert logger.error("x", "yes") is not None
        assert logger.records == 2
        assert len(sink.getvalue().splitlines()) == 2

    def test_invalid_format_and_level_rejected(self):
        with pytest.raises(ValueError, match="format"):
            RunLogger(io.StringIO(), fmt="xml")
        with pytest.raises(ValueError, match="level"):
            RunLogger(io.StringIO(), level="loud")

    def test_console_renderer(self):
        record = {
            "ts": 1.0,
            "run_id": "r",
            "level": "warning",
            "component": "medea",
            "msg": "conflict",
            "tick": 30.0,
            "app": "lra-1",
            "span": "engine.run;sim.cycle",
        }
        line = render_console_line(record)
        assert "30.0s" in line
        assert "WARNING" in line
        assert "medea: conflict" in line
        assert "app=lra-1" in line
        assert line.endswith("span=engine.run;sim.cycle")

    def test_console_format_sink(self):
        sink = io.StringIO()
        logger = RunLogger(sink, fmt="console")
        logger.info("sim", "hello", tick=1.0)
        assert "INFO" in sink.getvalue()
        assert "sim: hello" in sink.getvalue()

    def test_span_path_attached(self, tmp_path):
        from repro.obs.spans import span
        from repro.obs.trace import Tracer, MemorySink, set_tracer

        sink = io.StringIO()
        logger = RunLogger(sink)
        previous = set_tracer(Tracer([MemorySink()]))
        try:
            with span("engine.run"), span("sim.cycle"):
                record = logger.info("medea", "inside")
        finally:
            set_tracer(previous)
        assert record["span"] == "engine.run;sim.cycle"

    def test_disabled_default_is_zero_cost(self, isolate_log):
        log = get_run_logger()
        assert not log.enabled
        assert log.log("x", "dropped") is None
        assert log.records == 0

    def test_close_disables_and_is_idempotent(self, tmp_path):
        logger = RunLogger(tmp_path / "run.jsonl")
        logger.info("x", "one")
        logger.close()
        logger.close()
        assert not logger.enabled
        assert logger.log("x", "late") is None

    def test_levels_catalogue(self):
        assert LEVELS == ("debug", "info", "warning", "error")


class TestEnvConfiguration:
    def test_env_unset_means_disabled(self, isolate_log):
        assert configure_log_from_env({}) is None
        assert not get_run_logger().enabled

    def test_env_file_target(self, isolate_log, tmp_path):
        path = tmp_path / "env.jsonl"
        logger = configure_log_from_env({"MEDEA_LOG": str(path)})
        assert logger is get_run_logger()
        assert logger.enabled
        logger.info("sim", "via env")
        logger.close()
        assert "via env" in path.read_text()

    def test_env_format_and_level(self, isolate_log, tmp_path):
        path = tmp_path / "env.log"
        logger = configure_log_from_env(
            {
                "MEDEA_LOG": str(path),
                "MEDEA_LOG_FORMAT": "console",
                "MEDEA_LOG_LEVEL": "error",
            }
        )
        assert logger.fmt == "console"
        assert logger.info("x", "dropped") is None
        assert logger.error("x", "kept") is not None
        logger.close()

    def test_env_idempotent(self, isolate_log, tmp_path):
        env = {"MEDEA_LOG": str(tmp_path / "a.jsonl")}
        first = configure_log_from_env(env)
        second = configure_log_from_env({"MEDEA_LOG": str(tmp_path / "b.jsonl")})
        assert second is first
        first.close()


class TestInstrumentedComponents:
    def test_engine_and_sim_log_through_run_logger(self, isolate_log, tmp_path):
        from repro import SerialScheduler, build_cluster
        from repro.obs.log import configure_log
        from repro.sim import ClusterSimulation, SimConfig

        path = tmp_path / "sim.jsonl"
        logger = configure_log(path)
        topo = build_cluster(4, racks=2, memory_mb=8 * 1024, vcores=8)
        sim = ClusterSimulation(
            topo, SerialScheduler(),
            config=SimConfig(scheduling_interval_s=5.0, horizon_s=20.0),
        )
        sim.set_node_availability(topo.node_ids()[0], False, at=3.0)
        sim.run(20.0)
        logger.close()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        components = {r["component"] for r in records}
        assert "engine" in components
        assert "sim" in components
        flips = [r for r in records if r["msg"] == "node availability flip"]
        assert flips and flips[0]["tick"] == 3.0 and flips[0]["up"] is False
        starts = [r for r in records if r["msg"] == "run start"]
        assert starts and starts[0]["run_id"] == logger.run_id
