"""Tests for the span profiler and critical-path analyzer (ISSUE 4).

Covers the span model itself (nesting, self-time, synthetic phases, the
disabled no-op), the profile aggregation and its collapsed-stack export
(including the determinism contract: count-weighted stacks built from the
canonical, wall-stripped stream are byte-identical across same-seed runs),
the per-app critical-path attribution, the dashboard embedding (profile
timings stay under the summary's top-level ``"wall"`` key), and the
``repro profile`` CLI.
"""

from __future__ import annotations

import json

import pytest

from repro import (
    Resource,
    SerialScheduler,
    TaskRequest,
    build_cluster,
)
from repro.cli import main as cli_main
from repro.core.constraints import anti_affinity
from repro.obs import (
    EventKind,
    JsonlSink,
    MemorySink,
    Metrics,
    Tracer,
    build_profile,
    canonical,
    critical_paths,
    span,
    span_phase,
)
from repro.obs.profile import (
    ProfileReport,
    render_critical_paths,
    render_profile,
)
from repro.obs.report import build_dashboard
from repro.obs.spans import _NULL_SPAN, current_span_path
from repro.obs.metrics import get_metrics, set_metrics
from repro.obs.trace import set_tracer
from repro.sim import ClusterSimulation, SimConfig
from tests.helpers import make_lra


@pytest.fixture()
def isolate_obs():
    """Save and restore the ambient tracer/metrics around a test."""
    prev_tracer = set_tracer(None)
    prev_metrics = set_metrics(Metrics())
    yield
    set_tracer(prev_tracer)
    set_metrics(prev_metrics)


def _tracer():
    sink = MemorySink()
    return Tracer([sink], enabled=True), sink


def _span_events(sink):
    return [e for e in sink.events if e.kind == EventKind.SPAN]


class TestSpans:
    def test_nesting_builds_paths_and_depths(self):
        tracer, sink = _tracer()
        with span("root", tracer=tracer, time=3.0):
            with span("child", tracer=tracer):
                with span("leaf", tracer=tracer):
                    assert current_span_path(tracer) == "root;child;leaf"
        events = _span_events(sink)
        # Spans close inside-out.
        assert [e.data["path"] for e in events] == [
            "root;child;leaf", "root;child", "root",
        ]
        assert [e.data["depth"] for e in events] == [2, 1, 0]
        assert events[2].time == 3.0
        for event in events:
            assert event.wall["dur_s"] >= 0.0
            assert event.wall["self_s"] >= 0.0

    def test_self_time_excludes_children(self):
        tracer, sink = _tracer()
        with span("outer", tracer=tracer):
            with span("inner", tracer=tracer):
                pass
        inner, outer = _span_events(sink)
        assert outer.data["name"] == "outer"
        assert outer.wall["self_s"] <= outer.wall["dur_s"]
        assert outer.wall["dur_s"] >= inner.wall["dur_s"]

    def test_disabled_tracer_returns_shared_noop(self, isolate_obs):
        tracer = Tracer([], enabled=False)
        ctx = span("anything", tracer=tracer)
        assert ctx is _NULL_SPAN
        assert span("other", tracer=tracer) is ctx
        with ctx:
            pass
        # The ambient default tracer is disabled under isolate_obs too.
        assert span("ambient") is _NULL_SPAN
        span_phase("phase", 0.5)  # must be a silent no-op

    def test_span_emits_even_on_exception(self):
        tracer, sink = _tracer()
        with pytest.raises(RuntimeError):
            with span("crashy", tracer=tracer):
                raise RuntimeError("boom")
        events = _span_events(sink)
        assert [e.data["name"] for e in events] == ["crashy"]
        assert current_span_path(tracer) is None

    def test_span_phase_charges_parent(self):
        tracer, sink = _tracer()
        with span("solve", tracer=tracer):
            span_phase("lp", 0.25, count=12, tracer=tracer)
        lp, solve = _span_events(sink)
        assert lp.data == {
            "name": "lp", "path": "solve;lp", "depth": 1,
            "count": 12, "synthetic": True,
        }
        assert lp.wall == {"dur_s": 0.25, "self_s": 0.25}
        # The parent's self time excludes the synthetic child's duration
        # (clamped at zero because real elapsed time is far below 0.25s).
        assert solve.wall["self_s"] == 0.0

    def test_extra_labels_land_in_data(self):
        tracer, sink = _tracer()
        with span("place", tracer=tracer, scheduler="Serial"):
            pass
        (event,) = _span_events(sink)
        assert event.data["scheduler"] == "Serial"


class TestProfileReport:
    def _report(self):
        tracer, sink = _tracer()
        with span("run", tracer=tracer):
            for _ in range(3):
                with span("cycle", tracer=tracer):
                    span_phase("lp", 0.01, count=4, tracer=tracer)
        return build_profile(sink.events)

    def test_aggregates_by_path(self):
        report = self._report()
        assert set(report.spans) == {"run", "run;cycle", "run;cycle;lp"}
        assert report.spans["run;cycle"].count == 3
        assert report.spans["run;cycle;lp"].count == 12
        assert report.spans["run;cycle;lp"].total_s == pytest.approx(0.03)

    def test_collapsed_stack_format(self):
        report = self._report()
        lines = report.collapsed(weight="count").splitlines()
        assert lines == ["run 1", "run;cycle 3", "run;cycle;lp 12"]
        time_lines = report.collapsed(weight="time").splitlines()
        assert [ln.rsplit(" ", 1)[0] for ln in time_lines] == [
            "run", "run;cycle", "run;cycle;lp",
        ]
        for line in time_lines:
            int(line.rsplit(" ", 1)[1])  # integer microseconds
        with pytest.raises(ValueError):
            report.collapsed(weight="bogus")

    def test_zero_observation_guards(self):
        report = ProfileReport()
        assert report.collapsed() == ""
        assert report.collapsed(weight="count") == ""
        assert report.total_self_s() == 0.0
        assert report.to_obj() == {"events": 0, "spans": []}
        assert report.wall_obj() == {}
        assert "no spans recorded" in render_profile(report)
        assert "no LRA lifecycle events" in render_critical_paths([])

    def test_to_obj_is_deterministic_and_wall_free(self):
        report = self._report()
        obj = report.to_obj()
        assert "wall" not in json.dumps(obj)
        assert [s["path"] for s in obj["spans"]] == sorted(
            s["path"] for s in obj["spans"]
        )

    def test_accepts_decoded_dicts(self):
        tracer, sink = _tracer()
        with span("a", tracer=tracer):
            pass
        decoded = [json.loads(line) for line in sink.jsonl().splitlines()]
        report = build_profile(decoded)
        assert report.spans["a"].count == 1

    def test_render_profile_indents_tree(self):
        text = render_profile(self._report())
        assert "run" in text
        assert "  cycle" in text
        assert "    lp" in text


class TestTimerStatZeroObservations:
    """Satellite guard: percentile queries on empty aggregates must return
    a defined value (0.0), never raise — matching the profile report's
    empty-trace behaviour above."""

    def test_percentile_on_empty_stat_returns_zero(self):
        from repro.obs.metrics import TimerStat

        stat = TimerStat()
        for q in (0, 50, 95, 99, 100):
            assert stat.percentile(q) == 0.0

    def test_to_dict_on_empty_stat_is_defined(self):
        from repro.obs.metrics import TimerStat

        snapshot = TimerStat().to_dict()
        assert snapshot["count"] == 0
        assert snapshot["mean_s"] == 0.0
        assert snapshot["min_s"] == 0.0
        assert snapshot["p50_s"] == 0.0
        assert snapshot["p95_s"] == 0.0

    def test_unobserved_label_set_is_empty_stat(self):
        from repro.obs.metrics import Timer

        stat = Timer("t").stat(scheduler="never-used")
        assert stat.count == 0
        assert stat.percentile(95) == 0.0


def _make_sim(tracer=None, metrics=None):
    topo = build_cluster(6, racks=2, memory_mb=8 * 1024, vcores=8)
    config = SimConfig(scheduling_interval_s=5.0, horizon_s=60.0)
    return ClusterSimulation(
        topo, SerialScheduler(), config=config, tracer=tracer, metrics=metrics
    )


def _drive(sim):
    sim.submit_lra(
        make_lra(
            "web", containers=2, tags={"web"},
            constraints=(anti_affinity("web", "web", "node"),),
        ),
        at=1.0,
    )
    sim.submit_lra(make_lra("db", containers=1, tags={"db"}), at=2.0,
                   duration_s=20.0)
    for i in range(5):
        sim.submit_task(
            TaskRequest(f"t{i}", "batch", Resource(512, 1), duration_s=4.0),
            at=0.5 + i,
        )
    sim.run(40.0)


class TestSimulationSpans:
    def test_sim_emits_span_tree(self, isolate_obs):
        sink = MemorySink()
        tracer = Tracer([sink], enabled=True)
        sim = _make_sim(tracer=tracer, metrics=Metrics())
        _drive(sim)
        report = build_profile(sink.events)
        paths = set(report.spans)
        assert "engine.run" in paths
        assert "engine.run;sim.cycle" in paths
        assert "engine.run;sim.cycle;medea.cycle" in paths
        assert "engine.run;sim.cycle;medea.cycle;place:Serial" in paths
        assert "engine.run;sim.heartbeat" in paths
        # Parent totals dominate child totals.
        assert (
            report.spans["engine.run"].total_s
            >= report.spans["engine.run;sim.cycle"].total_s
        )

    def test_count_collapsed_stack_deterministic_across_runs(self, isolate_obs):
        stacks = []
        for _ in range(2):
            sink = MemorySink()
            sim = _make_sim(tracer=Tracer([sink], enabled=True),
                            metrics=Metrics())
            _drive(sim)
            # Build from the canonical (wall-stripped) stream: exactly what
            # the acceptance criterion compares.
            decoded = [
                json.loads(line)
                for line in canonical(sink.jsonl()).splitlines()
            ]
            stacks.append(build_profile(decoded).collapsed(weight="count"))
        assert stacks[0] == stacks[1]

    def test_disabled_tracing_emits_nothing(self, isolate_obs):
        sink = MemorySink()
        sim = _make_sim(tracer=Tracer([sink], enabled=False),
                        metrics=Metrics())
        _drive(sim)
        assert sink.events == []


class TestCriticalPaths:
    def _traced_events(self):
        sink = MemorySink()
        sim = _make_sim(tracer=Tracer([sink], enabled=True), metrics=Metrics())
        _drive(sim)
        return sink.events

    def test_attribution_for_placed_apps(self, isolate_obs):
        paths = critical_paths(self._traced_events())
        by_app = {p.app_id: p for p in paths}
        assert set(by_app) == {"web", "db"}
        web = by_app["web"]
        assert web.placed_time is not None
        assert web.latency_s == pytest.approx(
            web.queue_wait_s + web.retry_wait_s
        )
        assert web.queue_wait_s >= 0.0
        assert web.cycles >= 1
        assert web.attempts >= 1
        assert not web.dropped
        assert web.solver_wall_s >= 0.0

    def test_to_obj_segregates_solver_wall(self, isolate_obs):
        paths = critical_paths(self._traced_events())
        obj = paths[0].to_obj()
        assert "solver_wall_s" in obj["wall"]
        assert "solver_wall_s" not in {k for k in obj if k != "wall"}

    def test_empty_trace_yields_no_paths(self):
        assert critical_paths([]) == []


class TestDashboardProfileEmbedding:
    def _summary(self, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(trace_path))
        sim = _make_sim(tracer=Tracer([sink], enabled=True), metrics=Metrics())
        _drive(sim)
        sink.close()
        return build_dashboard(str(trace_path))

    def test_profile_and_critical_paths_sections(self, isolate_obs, tmp_path):
        summary = self._summary(tmp_path)
        assert summary["profile"]["spans"]
        assert summary["critical_paths"]
        # Every wall-clock timing is hoisted under the top-level wall key;
        # stripping it must leave no volatile numbers behind.
        wall = summary["wall"]
        assert set(wall["profile"]) == {
            s["path"] for s in summary["profile"]["spans"]
        }
        assert set(wall["critical_paths"]) == {
            p["app_id"] for p in summary["critical_paths"]
        }
        for entry in summary["critical_paths"]:
            assert "wall" not in entry
            assert "solver_wall_s" not in entry

    def test_summary_stays_byte_deterministic(self, isolate_obs, tmp_path):
        dumps = []
        for run in range(2):
            subdir = tmp_path / f"r{run}"
            subdir.mkdir()
            summary = self._summary(subdir)
            summary.pop("wall", None)
            dumps.append(json.dumps(summary, sort_keys=True))
        assert dumps[0] == dumps[1]

    def test_renderers_include_sections(self, isolate_obs, tmp_path):
        from repro.obs.report import render_dashboard, render_dashboard_html

        summary = self._summary(tmp_path)
        text = render_dashboard(summary)
        assert "span profile" in text
        assert "critical paths" in text
        html = render_dashboard_html(summary)
        assert "Span profile" in html
        assert "Critical paths" in html


class TestProfileCli:
    def _trace(self, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(trace_path))
        sim = _make_sim(tracer=Tracer([sink], enabled=True), metrics=Metrics())
        _drive(sim)
        sink.close()
        return trace_path

    def test_profile_command(self, isolate_obs, tmp_path, capsys):
        trace_path = self._trace(tmp_path)
        collapsed = tmp_path / "stacks.txt"
        summary_json = tmp_path / "profile.json"
        status = cli_main([
            "profile", str(trace_path),
            "--collapsed", str(collapsed), "--weight", "count",
            "--json", str(summary_json),
        ])
        assert status == 0
        out = capsys.readouterr().out
        assert "Span profile" in out
        assert "Critical paths" in out
        stacks = collapsed.read_text()
        assert any(
            line.startswith("engine.run ") for line in stacks.splitlines()
        )
        payload = json.loads(summary_json.read_text())
        assert payload["profile"]["spans"]
        assert payload["critical_paths"]

    def test_profile_command_missing_file(self, tmp_path, capsys):
        status = cli_main(["profile", str(tmp_path / "nope.jsonl")])
        assert status == 1
        assert "profile:" in capsys.readouterr().err
