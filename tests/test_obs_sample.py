"""Deterministic head-based trace sampling (``repro.obs.sample``).

Covers the sampling tentpole's contract: spec parsing and precedence,
seeded-hash determinism (same seed + spec → byte-identical canonical
traces), lifecycle completeness (head-based decisions keep or drop whole
lifecycles, never orphans), protected kinds, the ``wants`` /
``kind_enabled`` call-site gates, and replay over a sampled trace.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Resource, TagPopularityScheduler, build_cluster
from repro.core.requests import TaskRequest
from repro.obs.events import EventKind
from repro.obs.replay import replay_events
from repro.obs.sample import (
    PROTECTED_KINDS,
    SamplingPolicy,
    TraceSampler,
    parse_sample_spec,
)
from repro.obs.trace import MemorySink, Tracer
from repro.sim import ClusterSimulation, SimConfig
from repro.workloads.lra_gen import hbase_population


class TestPolicyParsing:
    def test_basic_spec(self):
        policy = SamplingPolicy.parse("heartbeat=0.01,task=0.5,seed=7")
        assert policy.seed == 7
        assert policy.rate_for(EventKind.SIM_HEARTBEAT) == 0.01
        assert policy.rate_for(EventKind.TASK_SUBMIT) == 0.5
        assert policy.rate_for(EventKind.LRA_SUBMIT) == 1.0  # default

    def test_default_and_star(self):
        assert SamplingPolicy.parse("*=0.2").rate_for("anything") == 0.2
        assert SamplingPolicy.parse("default=0.3").rate_for("x.y") == 0.3

    def test_first_match_wins(self):
        policy = SamplingPolicy.parse("task.submit=1.0,task=0.1")
        assert policy.rate_for(EventKind.TASK_SUBMIT) == 1.0
        assert policy.rate_for(EventKind.TASK_RELEASE) == 0.1

    def test_glob_patterns(self):
        policy = SamplingPolicy.parse("task.*=0.25")
        assert policy.rate_for(EventKind.TASK_ALLOCATE) == 0.25
        assert policy.rate_for(EventKind.LRA_SUBMIT) == 1.0

    def test_bare_word_matches_dot_component(self):
        policy = SamplingPolicy.parse("dispatch=0")
        assert policy.rate_for(EventKind.ENGINE_DISPATCH) == 0.0
        assert policy.rate_for("task.submit") == 1.0

    @pytest.mark.parametrize(
        "spec", ["task", "task=", "=0.5", "task=abc", "seed=x", "task=1.5",
                 "task=-0.1"]
    )
    def test_malformed_specs_raise(self, spec):
        with pytest.raises(ValueError):
            SamplingPolicy.parse(spec)

    def test_parse_sample_spec_blank_is_none(self):
        assert parse_sample_spec(None) is None
        assert parse_sample_spec("  ") is None
        assert parse_sample_spec("task=0.5") is not None

    def test_describe_round_trips(self):
        policy = SamplingPolicy.parse("heartbeat=0.01,task=0.5,*=0.9,seed=7")
        again = SamplingPolicy.parse(policy.describe())
        assert again.describe() == policy.describe()
        assert again.seed == policy.seed
        assert again.rate_for(EventKind.TASK_SUBMIT) == 0.5

    def test_trivial_policy(self):
        assert SamplingPolicy.parse("task=1.0").trivial
        assert not SamplingPolicy.parse("task=0.5").trivial


def _run_sim(tracer, *, nodes=24, tasks_per_s=10, horizon=40.0):
    topology = build_cluster(nodes, racks=3, memory_mb=8 * 1024, vcores=8)
    sim = ClusterSimulation(
        topology,
        TagPopularityScheduler(),
        config=SimConfig(
            scheduling_interval_s=10.0,
            heartbeat_interval_s=1.0,
            horizon_s=horizon,
            engine="ondemand",
        ),
        tracer=tracer,
    )
    for i, lra in enumerate(hbase_population(1)):
        sim.submit_lra(lra, at=float(2 * i))

    def submit(engine):
        second = int(engine.now)
        for j in range(tasks_per_s):
            sim.submit_task_now(
                TaskRequest(
                    task_id=f"s{second}-{j}",
                    app_id=f"job-{second % 3}",
                    resource=Resource(512, 1),
                    duration_s=3.0,
                )
            )

    sim.engine.schedule_periodic(1.0, submit, until=15.0)
    sim.run()
    return sim


def _sampled_run(spec: str) -> MemorySink:
    sink = MemorySink()
    tracer = Tracer([sink], sampler=TraceSampler(SamplingPolicy.parse(spec)))
    _run_sim(tracer)
    tracer.close()
    return sink


class TestDeterminism:
    def test_same_seed_same_spec_byte_identical(self):
        spec = "task=0.3,heartbeat=0.2,seed=11"
        first = _sampled_run(spec).jsonl(canonical=True)
        second = _sampled_run(spec).jsonl(canonical=True)
        assert len(first) > 500
        assert first == second

    def test_different_seed_differs(self):
        kept_a = [e.kind for e in _sampled_run("task=0.3,seed=1").events]
        kept_b = [e.kind for e in _sampled_run("task=0.3,seed=2").events]
        assert kept_a != kept_b  # different identities survive

    def test_sampling_reduces_volume(self):
        full = _sampled_run("seed=3")
        thin = _sampled_run("task=0.2,heartbeat=0.2,dispatch=0,seed=3")
        assert 0 < len(thin) < len(full)

    def test_kept_stream_has_contiguous_seqs(self):
        events = _sampled_run("task=0.3,seed=5").events
        assert [e.seq for e in events] == list(range(len(events)))


class TestLifecycleCompleteness:
    def test_no_orphan_task_events(self):
        """Head-based sampling keeps or drops whole task lifecycles."""
        sink = _sampled_run("task=0.3,seed=9")
        stages: dict[str, set[str]] = {}
        for event in sink.events:
            if event.kind.startswith("task."):
                task_id = event.data["task_id"]
                stages.setdefault(task_id, set()).add(event.kind)
        assert stages, "expected some kept task lifecycles"
        for task_id, kinds in stages.items():
            assert kinds == {
                EventKind.TASK_SUBMIT,
                EventKind.TASK_ALLOCATE,
                EventKind.TASK_RELEASE,
                EventKind.TASK_FINISH,
            }, f"{task_id} kept a partial lifecycle: {kinds}"

    def test_protected_kinds_survive_zero_default(self):
        sink = _sampled_run("*=0,seed=4")
        kinds = set(sink.kinds())
        assert EventKind.SIM_STATE_HASH in kinds
        assert all(k in PROTECTED_KINDS for k in kinds)

    @given(seed=st.integers(0, 2**31), rate=st.floats(0.0, 1.0))
    @settings(max_examples=50, deadline=None)
    def test_decision_is_pure_function_of_seed_and_key(self, seed, rate):
        policy = SamplingPolicy([("task", rate)], seed=seed)
        one, two = TraceSampler(policy), TraceSampler(policy)
        for i in range(50):
            key = f"task-{i}"
            assert one.decide(EventKind.TASK_SUBMIT, key) == two.decide(
                EventKind.TASK_SUBMIT, key
            )

    @given(rate=st.floats(0.05, 0.95), seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_lifecycle_inherits_head_decision(self, rate, seed):
        sampler = TraceSampler(SamplingPolicy([("task", rate)], seed=seed))
        for i in range(30):
            key = f"t-{i}"
            head = sampler.decide(EventKind.TASK_SUBMIT, key)
            assert sampler.decide(EventKind.TASK_ALLOCATE, key) == head
            assert sampler.decide(EventKind.TASK_RELEASE, key) == head
            # Terminal event still matches, then evicts the decision.
            assert sampler.decide(EventKind.TASK_FINISH, key) == head
            assert key not in sampler._decisions

    def test_decision_map_stays_bounded(self):
        sampler = TraceSampler(SamplingPolicy([("task", 0.5)], seed=1))
        for i in range(5000):
            key = f"t-{i}"
            sampler.decide(EventKind.TASK_SUBMIT, key)
            sampler.decide(EventKind.TASK_FINISH, key)
        assert len(sampler._decisions) == 0


class TestCallSiteGates:
    def test_wants_matches_sample_for_keyed_kinds(self):
        spec = "task=0.4,seed=13"
        gate = Tracer([], sampler=TraceSampler(SamplingPolicy.parse(spec)))
        oracle = TraceSampler(SamplingPolicy.parse(spec))
        for i in range(200):
            key = f"t-{i}"
            wanted = gate.wants(EventKind.TASK_SUBMIT, key)
            kept, _ = oracle.sample(
                EventKind.TASK_SUBMIT, {"task_id": key}
            )
            assert wanted == kept

    def test_wants_counts_suppressed_events(self):
        tracer = Tracer(
            [], sampler=TraceSampler(SamplingPolicy.parse("task=0,seed=1"))
        )
        for i in range(10):
            assert not tracer.wants(EventKind.TASK_SUBMIT, f"t-{i}")
        assert tracer.events_dropped == 10
        assert tracer.events_seen == 10
        assert tracer.events_emitted == 0

    def test_wants_true_paths(self):
        tracer = Tracer([])  # no sampler: everything wanted
        assert tracer.wants(EventKind.TASK_SUBMIT, "t-1")
        tracer = Tracer(
            [], sampler=TraceSampler(SamplingPolicy.parse("task=0,seed=1"))
        )
        assert tracer.wants(EventKind.SIM_STATE_HASH)  # protected
        assert not Tracer([], enabled=False).wants(EventKind.TASK_SUBMIT)

    def test_kind_enabled_latch(self):
        tracer = Tracer(
            [],
            sampler=TraceSampler(
                SamplingPolicy.parse("engine.dispatch=0,task=0.5,seed=1")
            ),
        )
        assert not tracer.kind_enabled(EventKind.ENGINE_DISPATCH)
        assert tracer.kind_enabled(EventKind.TASK_SUBMIT)  # fractional
        assert tracer.kind_enabled(EventKind.SIM_STATE_HASH)  # protected
        assert not Tracer([], enabled=False).kind_enabled(
            EventKind.TASK_SUBMIT
        )

    def test_gated_and_ungated_kept_streams_identical(self):
        """The call-site gates change who pays for drops, never what is
        kept: forcing every event through emit() (wants → True) yields
        the same kept stream as the gated call sites."""
        spec = "task=0.3,heartbeat=0.2,seed=11"
        gated = _sampled_run(spec).jsonl(canonical=True)

        class UngatedTracer(Tracer):
            def wants(self, kind, key=None):  # defer to emit()'s sampler
                return self.enabled

            def kind_enabled(self, kind):
                return self.enabled

        sink = MemorySink()
        tracer = UngatedTracer(
            [sink], sampler=TraceSampler(SamplingPolicy.parse(spec))
        )
        _run_sim(tracer)
        tracer.close()
        assert sink.jsonl(canonical=True) == gated

    def test_self_stats_account_rates(self):
        sink = MemorySink()
        tracer = Tracer(
            [sink],
            sampler=TraceSampler(SamplingPolicy.parse("task=0.3,seed=11")),
        )
        _run_sim(tracer)
        tracer.close()
        stats = tracer.self_stats()
        assert stats["events_emitted"] == len(sink)
        assert stats["events_dropped"] > 0
        assert (
            stats["events_seen"]
            == stats["events_emitted"] + stats["events_dropped"]
        )
        assert stats["sampling"] == "task=0.3,seed=11"


class TestSampledReplay:
    def test_sampled_trace_replays_without_divergence(self):
        """Dropping lifecycles must not fake a divergence: the sampler's
        ``sampled_hash`` enrichment gives replay a checkpoint computed
        over the kept events only."""
        sink = _sampled_run("task=0.3,heartbeat=0.2,seed=11")
        report = replay_events(e.to_obj() for e in sink.events)
        assert report.checks > 0
        assert not report.divergences

    def test_full_trace_still_replays(self):
        sink = _sampled_run("seed=11")  # nothing dropped
        report = replay_events(e.to_obj() for e in sink.events)
        assert report.checks > 0
        assert not report.divergences

    def test_state_hash_carries_sampled_fingerprint(self):
        sink = _sampled_run("task=0.3,seed=11")
        hashes = sink.of_kind(EventKind.SIM_STATE_HASH)
        assert hashes
        assert all("sampled_hash" in e.data for e in hashes)
