"""Tests for the live telemetry endpoint (``repro.obs.serve``)."""

from __future__ import annotations

import json
import re
import urllib.request

import pytest

from repro.obs.events import EventKind
from repro.obs.metrics import Metrics, set_metrics
from repro.obs.serve import (
    HealthState,
    TelemetryServer,
    fetch_snapshot,
    get_server,
    install,
    render_prometheus,
    serve_from_env,
    shutdown_server,
)
from repro.obs.trace import get_tracer, set_tracer
from repro.version import get_version, server_banner, user_agent


@pytest.fixture()
def isolate_obs():
    prev_tracer = set_tracer(None)
    prev_metrics = set_metrics(Metrics())
    yield
    shutdown_server()
    set_tracer(prev_tracer)
    set_metrics(prev_metrics)


@pytest.fixture()
def server(isolate_obs):
    server = install(0)
    yield server
    shutdown_server()


def _get(server, path):
    with urllib.request.urlopen(f"{server.url}{path}", timeout=5) as response:
        return response.status, dict(response.headers), response.read().decode()


#: One Prometheus text-exposition sample line: name{labels} value.
_PROM_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"
    r" (NaN|[+-]?Inf|[+-]?[0-9.e+-]+)$"
)


class TestPrometheusRendering:
    def test_counters_gauges_timers(self):
        metrics = Metrics()
        metrics.counter("lra_placed_total").inc(3, scheduler="ilp")
        metrics.gauge("violations_containers").set(2.0)
        metrics.timer("scheduler_place_seconds").observe(0.25, scheduler="ilp")
        text = render_prometheus(metrics.snapshot())
        assert "# TYPE lra_placed_total counter" in text
        assert 'lra_placed_total{scheduler="ilp"} 3.0' in text
        assert "# TYPE violations_containers gauge" in text
        assert "# TYPE scheduler_place_seconds summary" in text
        assert 'scheduler_place_seconds{scheduler="ilp",quantile="0.5"}' in text
        assert 'scheduler_place_seconds_count{scheduler="ilp"} 1.0' in text
        assert 'scheduler_place_seconds_sum{scheduler="ilp"} 0.25' in text

    def test_every_line_is_valid_exposition_format(self):
        metrics = Metrics()
        metrics.counter("a_total").inc()
        metrics.counter("b_total").inc(2, k="v", other="x")
        metrics.gauge("util").set(0.5, rack="r1")
        metrics.timer("t_seconds").observe(0.1)
        for line in render_prometheus(metrics.snapshot()).splitlines():
            if line.startswith("#"):
                assert re.match(r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* "
                                r"(counter|gauge|summary)$", line), line
            else:
                assert _PROM_LINE.match(line), line

    def test_name_sanitization_and_label_escaping(self):
        metrics = Metrics()
        metrics.counter("weird.name-total").inc(tag='quo"te\nnl')
        text = render_prometheus(metrics.snapshot())
        assert "weird_name_total" in text
        assert '\\"' in text and "\\n" in text

    def test_label_values_with_separators_survive(self):
        """A label value containing ``,`` / ``=`` / ``\\`` must come out of
        /metrics as ONE label, not be split on the canonical-key
        separators (the naive-split regression)."""
        from repro.obs.metrics import parse_label_key

        metrics = Metrics()
        metrics.counter("edge_total").inc(
            rule="{hb & mem, 1, inf}", path="a\\b=c"
        )
        text = render_prometheus(metrics.snapshot())
        line = next(
            l for l in text.splitlines() if l.startswith("edge_total{")
        )
        assert _PROM_LINE.match(line), line
        # Exactly the two labels, each with its full (escaped) value.
        assert line.count("=\"") == 2
        assert 'rule="{hb & mem, 1, inf}"' in line
        assert 'path="a\\\\b=c"' in line

        # And the canonical key itself round-trips losslessly.
        from repro.obs.metrics import _label_key

        labels = {"rule": "{hb & mem, 1, inf}", "path": "a\\b=c",
                  "nl": "x\ny", "quote": 'a"b'}
        assert dict(parse_label_key(_label_key(labels))) == {
            k: str(v) for k, v in labels.items()
        }

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus(Metrics().snapshot()) == ""


class TestHealthState:
    def test_waiting_before_first_beat(self):
        health = HealthState(5.0)
        alive, payload = health.status()
        assert alive and payload["status"] == "waiting"

    def test_ok_then_stalled_past_deadline(self):
        now = [100.0]
        health = HealthState(5.0, clock=lambda: now[0])
        health.beat(12.0)
        alive, payload = health.status()
        assert alive and payload["status"] == "ok"
        assert payload["last_tick"] == 12.0
        now[0] += 6.0
        alive, payload = health.status()
        assert not alive and payload["status"] == "stalled"

    def test_rejects_nonpositive_deadline(self):
        with pytest.raises(ValueError):
            HealthState(0)


class TestEndpoints:
    def test_metrics_endpoint(self, server):
        server.metrics.counter("lra_placed_total").inc(scheduler="ilp")
        status, headers, body = _get(server, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        assert 'lra_placed_total{scheduler="ilp"} 1.0' in body

    def test_healthz_flips_503_on_stall(self, isolate_obs):
        server = TelemetryServer(0, deadline_s=0.05)
        server.start()
        try:
            # Before any event: waiting, still 200.
            status, _, body = _get(server, "/healthz")
            assert status == 200
            assert json.loads(body)["status"] == "waiting"
            # One event beats health; fresh = ok.
            server.beat(3.0)
            status, _, body = _get(server, "/healthz")
            assert status == 200
            assert json.loads(body)["last_tick"] == 3.0
            # Stall past the (artificially tiny) deadline → 503.
            import time
            time.sleep(0.1)
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server, "/healthz")
            assert excinfo.value.code == 503
            assert json.loads(excinfo.value.read())["status"] == "stalled"
        finally:
            server.stop()

    def test_snapshot_structure_and_live_series(self, server):
        tracer = get_tracer()
        assert tracer.enabled  # install() set up a sink-only tracer
        tracer.emit(
            EventKind.SIM_STATE_HASH, time=1.0,
            data={"hash": "h", "containers": 2, "utilization": 0.25,
                  "utilization_by_rack": {}, "pending_tasks": 0,
                  "pending_lras": 1, "nodes_down": 0},
        )
        status, _, body = _get(server, "/snapshot")
        assert status == 200
        snapshot = json.loads(body)
        assert snapshot["meta"]["build"]["name"] == "repro"
        assert snapshot["meta"]["build"]["version"] == get_version()
        assert snapshot["wall"]["health"]["status"] == "ok"
        assert "utilization" in snapshot["series"]

    def test_index_and_404(self, server):
        status, _, body = _get(server, "/")
        assert status == 200
        assert json.loads(body)["endpoints"] == [
            "/metrics", "/healthz", "/snapshot", "/place"
        ]
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server, "/nope")
        assert excinfo.value.code == 404

    def test_server_banner_from_build_metadata(self, server):
        with urllib.request.urlopen(f"{server.url}/healthz", timeout=5) as r:
            banner = r.headers["Server"]
        assert banner == server_banner()
        assert banner == f"repro/{get_version()}"
        assert "Python" not in banner


class TestAmbientWiring:
    def test_install_is_idempotent_and_shutdown_detaches(self, isolate_obs):
        first = install(0)
        assert install(0) is first
        assert get_server() is first
        shutdown_server()
        assert get_server() is None

    def test_install_attaches_sink_to_enabled_tracer(self, isolate_obs):
        from repro.obs.trace import MemorySink, Tracer

        sink = MemorySink()
        set_tracer(Tracer([sink]))
        server = install(0)
        get_tracer().emit(EventKind.SIM_HEARTBEAT, time=2.0,
                          data={"allocations": 0})
        assert server.health.beats == 1
        assert len(sink.events) == 1  # the original sink still sees events

    def test_serve_from_env(self, isolate_obs):
        assert serve_from_env({}) is None
        assert serve_from_env({"MEDEA_SERVE": "off"}) is None
        with pytest.raises(ValueError, match="port"):
            serve_from_env({"MEDEA_SERVE": "not-a-port"})
        server = serve_from_env({"MEDEA_SERVE": "0"})
        assert server is not None and server.port > 0


class TestWatchClient:
    def test_fetch_snapshot_and_user_agent(self, server):
        snapshot = fetch_snapshot(str(server.port))
        assert snapshot["meta"]["build"]["name"] == "repro"
        assert user_agent("watch") == f"repro-watch/{get_version()}"

    def test_render_watch_frame(self, server):
        from repro.obs.serve import render_watch

        get_tracer().emit(
            EventKind.SIM_STATE_HASH, time=1.0,
            data={"hash": "h", "containers": 2, "utilization": 0.25,
                  "utilization_by_rack": {}, "pending_tasks": 3,
                  "pending_lras": 1, "nodes_down": 0},
        )
        frame = render_watch(fetch_snapshot(str(server.port)))
        assert f"repro/{get_version()}" in frame
        assert "health=ok" in frame
        assert "utilization" in frame

    def test_cli_watch_count_one(self, server, capsys):
        from repro.cli import main

        get_tracer().emit(EventKind.SIM_HEARTBEAT, time=1.0,
                          data={"allocations": 0})
        assert main(["watch", str(server.port), "--count", "1",
                     "--no-clear"]) == 0
        out = capsys.readouterr().out
        assert f"repro/{get_version()}" in out

    def test_cli_watch_unreachable_exits_nonzero(self, isolate_obs, capsys):
        from repro.cli import main

        # A port with nothing listening (bind-and-close to find one).
        # --retry-for 0 disables the connection-retry grace period so the
        # failure is immediate instead of backing off for the default 10s.
        import socket
        with socket.socket() as s:
            s.bind(("127.0.0.1", 0))
            dead_port = s.getsockname()[1]
        assert main(["watch", str(dead_port), "--count", "1",
                     "--retry-for", "0"]) == 1
        assert "cannot reach" in capsys.readouterr().err

    def test_watch_retry_waits_for_late_endpoint(self, isolate_obs):
        """A watcher started before the endpoint binds retries with backoff
        and succeeds once the server appears (instead of crashing)."""
        import threading

        from repro.cli import _fetch_snapshot_retrying

        # Reserve a port, start the server on it shortly after the watcher
        # has already begun retrying against the refused connection.
        import socket
        with socket.socket() as s:
            s.bind(("127.0.0.1", 0))
            port = s.getsockname()[1]

        started = threading.Timer(0.6, lambda: install(port))
        started.start()
        try:
            snapshot = _fetch_snapshot_retrying(str(port), retry_for_s=10.0)
        finally:
            started.cancel()
            shutdown_server()
        assert snapshot["meta"]["build"]["name"] == "repro"

    def test_watch_retry_zero_raises_immediately(self, isolate_obs):
        from urllib.error import URLError

        from repro.cli import _fetch_snapshot_retrying

        import socket
        with socket.socket() as s:
            s.bind(("127.0.0.1", 0))
            dead_port = s.getsockname()[1]
        with pytest.raises((URLError, OSError)):
            _fetch_snapshot_retrying(str(dead_port), retry_for_s=0.0)
