"""Tests for the timeline / SLO / replay layer (``repro.obs`` part 2).

Covers the evaluation-signal tentpole: bounded-memory time-series
aggregation, declarative SLO monitoring with typed breach events, trace
replay with state-hash cross-checking (including corruption detection),
dashboard byte-determinism for same-seed runs, timer percentiles, the
``repro.metrics.stats`` → ``repro.obs.stats`` move, and the hardened
trace-file reader behind ``repro trace-report`` / ``dashboard``.
"""

from __future__ import annotations

import json
import warnings

import pytest

from repro import (
    Resource,
    SerialScheduler,
    TaskRequest,
    build_cluster,
)
from repro.core.constraints import anti_affinity
from repro.obs import (
    JsonlSink,
    MemorySink,
    Metrics,
    SLOMonitor,
    SLORule,
    TimelineAggregator,
    TraceFileError,
    Tracer,
    TimeSeries,
    build_dashboard,
    default_smoke_slos,
    replay_events,
    replay_jsonl,
)
from repro.obs.metrics import set_metrics
from repro.obs.report import read_trace
from repro.obs.trace import set_tracer
from repro.sim import ClusterSimulation, SimConfig
from tests.helpers import make_lra


@pytest.fixture()
def isolate_obs():
    """Save and restore the ambient tracer/metrics around a test."""
    prev_tracer = set_tracer(None)
    prev_metrics = set_metrics(Metrics())
    yield
    set_tracer(prev_tracer)
    set_metrics(prev_metrics)


def _make_sim(tracer=None, metrics=None):
    topo = build_cluster(6, racks=2, memory_mb=8 * 1024, vcores=8)
    config = SimConfig(scheduling_interval_s=5.0, horizon_s=60.0)
    return ClusterSimulation(
        topo, SerialScheduler(), config=config, tracer=tracer, metrics=metrics
    )


def _drive(sim):
    sim.submit_lra(
        make_lra(
            "web", containers=2, tags={"web"},
            constraints=(anti_affinity("web", "web", "node"),),
        ),
        at=1.0,
    )
    sim.submit_lra(make_lra("db", containers=1, tags={"db"}), at=2.0,
                   duration_s=20.0)
    for i in range(5):
        sim.submit_task(
            TaskRequest(f"t{i}", "batch", Resource(512, 1), duration_s=4.0),
            at=0.5 + i,
        )
    sim.run(40.0)


def _traced_run(path):
    tracer = Tracer([JsonlSink(path)])
    sim = _make_sim(tracer=tracer, metrics=Metrics())
    _drive(sim)
    tracer.close()
    return path


class TestTimeSeries:
    def test_mean_buckets(self):
        s = TimeSeries("x", agg="mean", tick_s=1.0)
        s.add(0.2, 1.0)
        s.add(0.8, 3.0)
        s.add(2.5, 5.0)
        assert s.points() == [(0.0, 2.0), (2.0, 5.0)]

    def test_sum_max_last(self):
        for agg, expect in (("sum", 4.0), ("max", 3.0), ("last", 3.0)):
            s = TimeSeries("x", agg=agg)
            s.add(0.1, 1.0)
            s.add(0.2, 3.0)
            assert s.values() == [expect], agg

    def test_out_of_order_samples_merge(self):
        s = TimeSeries("x", agg="sum", tick_s=1.0)
        s.add(5.0, 1.0)
        s.add(0.5, 1.0)
        s.add(5.9, 1.0)
        assert s.points() == [(0.0, 1.0), (5.0, 2.0)]

    def test_downsampling_bounds_memory(self):
        s = TimeSeries("x", agg="sum", tick_s=1.0, max_points=8)
        for t in range(100):
            s.add(float(t), 1.0)
        assert len(s) <= 8
        assert s.tick_s > 1.0  # tick width doubled at least once
        # No samples were lost: the per-tick sums still total 100.
        assert sum(s.values()) == pytest.approx(100.0)

    def test_mean_survives_coarsening(self):
        s = TimeSeries("x", agg="mean", tick_s=1.0, max_points=4)
        for t in range(16):
            s.add(float(t), 2.0)
        assert all(v == pytest.approx(2.0) for v in s.values())

    def test_validation(self):
        with pytest.raises(ValueError):
            TimeSeries("x", agg="median")
        with pytest.raises(ValueError):
            TimeSeries("x", tick_s=0.0)


class TestTimelineAggregator:
    def test_sim_trace_produces_paper_series(self, isolate_obs):
        sink = MemorySink()
        tracer = Tracer([sink])
        sim = _make_sim(tracer=tracer, metrics=Metrics())
        _drive(sim)
        timeline = TimelineAggregator()
        timeline.consume_all(e.to_obj() for e in sink.events)
        for name in ("utilization", "containers", "pending_lras",
                     "task_queue_delay_s", "containers_started",
                     "violations", "queue_depth:Serial"):
            assert name in timeline.series, name
            assert timeline.series[name].values(), name
        assert any(n.startswith("rack_utilization:") for n in timeline.series)
        span = timeline.time_span()
        assert span is not None and span[1] <= 40.0

    def test_live_sink_equals_posthoc(self, isolate_obs):
        live = TimelineAggregator()
        sink = MemorySink()
        tracer = Tracer([sink, live])
        sim = _make_sim(tracer=tracer, metrics=Metrics())
        _drive(sim)
        posthoc = TimelineAggregator()
        posthoc.consume_all(e.to_obj() for e in sink.events)
        assert live.summary() == posthoc.summary()

    def test_volatile_series_segregated_under_wall(self, isolate_obs):
        sink = MemorySink()
        tracer = Tracer([sink])
        sim = _make_sim(tracer=tracer, metrics=Metrics())
        _drive(sim)
        timeline = TimelineAggregator()
        timeline.consume_all(e.to_obj() for e in sink.events)
        summary = timeline.summary()
        assert "solver_latency_s:Serial" in summary["wall"]["series"]
        assert not any(
            name.startswith("solver_latency_s") for name in summary["series"]
        )

    def test_from_jsonl(self, tmp_path, isolate_obs):
        path = _traced_run(tmp_path / "t.jsonl")
        timeline = TimelineAggregator.from_jsonl(str(path))
        assert timeline.series["utilization"].values()


class TestReplay:
    def test_sim_trace_replays_clean(self, isolate_obs):
        sink = MemorySink()
        tracer = Tracer([sink])
        sim = _make_sim(tracer=tracer, metrics=Metrics())
        _drive(sim)
        report = replay_events([e.to_obj() for e in sink.events])
        assert report.ok
        assert report.checks > 0
        assert report.allocated > 0 and report.released > 0
        assert not report.warnings

    def test_corrupted_trace_detected_with_first_divergent_tick(
        self, tmp_path, isolate_obs
    ):
        path = _traced_run(tmp_path / "t.jsonl")
        lines = path.read_text().splitlines()
        corrupted_at = None
        for i, line in enumerate(lines):
            obj = json.loads(line)
            if obj["kind"] == "task.allocate":
                obj["data"]["node_id"] += "-tampered"
                lines[i] = json.dumps(obj, sort_keys=True)
                corrupted_at = obj["time"]
                break
        assert corrupted_at is not None
        path.write_text("\n".join(lines) + "\n")
        report = replay_jsonl(str(path))
        assert not report.ok
        first = report.first_divergence
        assert first is not None
        # The first divergent checkpoint is the first one at/after the edit.
        assert first.time >= corrupted_at
        assert first.expected != first.actual
        assert str(first.seq) in first.describe()

    def test_batch_trace_vacuously_valid(self):
        events = [{"kind": "lra.place", "seq": 0, "time": 0.0,
                   "data": {"placements": [["c1", "n1"]]}}]
        report = replay_events(events)
        assert report.ok and report.checks == 0
        assert any("no sim.state_hash" in w for w in report.warnings)


class TestSLO:
    def _timeline(self, **series_values):
        timeline = TimelineAggregator()
        for name, values in series_values.items():
            series = timeline.series[name] = TimeSeries(name, agg="last")
            for t, v in enumerate(values):
                series.add(float(t), v)
        return timeline

    def test_pass_fail_skip(self):
        timeline = self._timeline(queue=[1.0, 2.0, 3.0])
        monitor = SLOMonitor([
            SLORule(name="ok", series="queue", agg="max", threshold=5.0),
            SLORule(name="bad", series="queue", agg="max", threshold=2.0),
            SLORule(name="absent", series="nope", agg="max", threshold=1.0),
        ])
        report = monitor.evaluate(timeline)
        by_name = {r.rule.name: r for r in report.results}
        assert by_name["ok"].status == "pass"
        assert by_name["bad"].status == "FAIL"
        assert by_name["absent"].status == "skip"
        assert report.verdict == "fail"
        assert [b.rule.name for b in report.breaches] == ["bad"]

    def test_glob_takes_worst_series(self):
        timeline = self._timeline(**{"q:a": [1.0], "q:b": [9.0]})
        rule = SLORule(name="r", series="q:*", agg="max", threshold=5.0)
        result = SLOMonitor([rule]).evaluate(timeline).results[0]
        assert result.status == "FAIL"
        assert result.observed == pytest.approx(9.0)
        assert result.matched_series == ("q:a", "q:b")

    def test_percentile_agg(self):
        timeline = self._timeline(lat=[float(i) for i in range(1, 101)])
        rule = SLORule(name="p99", series="lat", agg="p99", threshold=98.0)
        result = SLOMonitor([rule]).evaluate(timeline).results[0]
        assert result.status == "FAIL"
        assert result.observed > 98.0

    def test_breach_emits_typed_event(self):
        timeline = self._timeline(queue=[10.0])
        monitor = SLOMonitor(
            [SLORule(name="r", series="queue", agg="max", threshold=1.0)]
        )
        sink = MemorySink()
        monitor.evaluate(timeline, tracer=Tracer([sink]))
        kinds = [e.kind for e in sink.events]
        assert kinds == ["slo.breach"]
        assert sink.events[0].data["rule"] == "r"
        assert sink.events[0].data["observed"] == 10.0

    def test_rule_validation_and_roundtrip(self):
        with pytest.raises(ValueError):
            SLORule(name="x", series="s", threshold=1.0, agg="p999")
        with pytest.raises(ValueError):
            SLORule(name="x", series="s", threshold=1.0, op="==")
        rule = SLORule(name="x", series="s", threshold=1.0, op=">", agg="min")
        assert SLORule.from_obj(rule.to_obj()) == rule
        with pytest.raises(ValueError, match="missing"):
            SLORule.from_obj({"name": "x"})

    def test_default_smoke_rules_pass_on_sim_trace(self, isolate_obs):
        sink = MemorySink()
        tracer = Tracer([sink])
        sim = _make_sim(tracer=tracer, metrics=Metrics())
        _drive(sim)
        timeline = TimelineAggregator()
        timeline.consume_all(e.to_obj() for e in sink.events)
        report = SLOMonitor(default_smoke_slos()).evaluate(timeline)
        assert report.ok, [r.to_obj() for r in report.results if not r.ok]


class TestDashboardDeterminism:
    def test_same_seed_summaries_byte_identical(self, tmp_path, isolate_obs):
        a = _traced_run(tmp_path / "a.jsonl")
        b = _traced_run(tmp_path / "b.jsonl")
        summaries = []
        for path in (a, b):
            summary = build_dashboard(str(path))
            summary.pop("wall", None)  # volatile wall-clock content
            summaries.append(json.dumps(summary, sort_keys=True))
        assert summaries[0] == summaries[1]

    def test_replay_section_validates(self, tmp_path, isolate_obs):
        path = _traced_run(tmp_path / "t.jsonl")
        summary = build_dashboard(str(path))
        assert summary["replay"]["ok"] is True
        assert summary["replay"]["checks"] > 0
        assert summary["slo"]["verdict"] == "pass"


class TestTimerPercentiles:
    def test_bounded_error_on_uniform_ramp(self):
        metrics = Metrics()
        timer = metrics.timer("lat")
        for v in range(1, 101):
            timer.observe(float(v))
        stat = timer.stat()
        # Histogram-backed: nearest-rank within the bucket relative error.
        assert stat.percentile(50) == pytest.approx(50.0, rel=0.01)
        assert stat.percentile(99) == pytest.approx(99.0, rel=0.01)

    def test_snapshot_includes_percentiles(self):
        metrics = Metrics()
        metrics.timer("lat").observe(2.0)
        stat = metrics.snapshot()["timers"]["lat"][""]
        for key in ("p50_s", "p95_s", "p99_s"):
            assert stat[key] == pytest.approx(2.0)

    def test_histogram_backed_bounded_and_deterministic(self):
        stats = []
        for _ in range(2):
            metrics = Metrics()
            timer = metrics.timer("lat")
            for v in range(10_000):
                timer.observe(float(v))
            stats.append(timer.stat())
        # Same observation sequence ⇒ byte-identical histogram state, and
        # the bucket count is bounded regardless of observation count.
        assert stats[0].hist.to_json() == stats[1].hist.to_json()
        assert len(stats[0].hist._buckets) < 2_000
        assert stats[0].percentile(90) == pytest.approx(9_000, rel=0.01)

    def test_reservoir_shim_restores_old_path(self, monkeypatch):
        from repro.obs import metrics as metrics_mod
        from repro.obs.metrics import use_reservoir_percentiles

        monkeypatch.setattr(metrics_mod, "_reservoir_warned", False)
        with pytest.warns(DeprecationWarning, match="reservoir"):
            use_reservoir_percentiles(True)
        try:
            metrics = Metrics()
            timer = metrics.timer("lat")
            for v in range(1, 101):
                timer.observe(float(v))
            stat = timer.stat()
            # Legacy reservoir semantics: exact interpolated percentiles
            # below the reservoir size, samples retained.
            assert len(stat._samples) == 100
            assert stat.percentile(50) == pytest.approx(50.5)
            assert stat.percentile(99) == pytest.approx(99.01)
        finally:
            use_reservoir_percentiles(False)


class TestStatsMove:
    def test_repro_package_import_warns_nothing(self):
        """The supported spelling is ``from repro import BoxStats``; the
        whole ``repro.metrics`` package is now a warn-once shim (see
        tests/test_deprecation_shims.py)."""
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro import BoxStats, evaluate_violations  # noqa: F401

    def test_old_module_path_warns(self):
        import repro.metrics.stats as old

        with pytest.warns(DeprecationWarning, match="repro.obs.stats"):
            old.BoxStats
        import repro.obs.stats as new

        assert old.percentile is new.percentile

    def test_box_stats_record_to_registry(self):
        from repro.obs.stats import BoxStats

        metrics = Metrics()
        BoxStats.from_values([1.0, 2.0, 3.0]).record_to(metrics, "lat")
        gauges = metrics.snapshot()["gauges"]["lat"]
        assert gauges["stat=median"] == pytest.approx(2.0)
        assert gauges["stat=count"] == 3

    def test_violations_recorded_into_registry(self, isolate_obs):
        from repro import ClusterState, ConstraintManager, evaluate_violations

        topo = build_cluster(4)
        state = ClusterState(topo)
        manager = ConstraintManager(topo)
        metrics = Metrics()
        evaluate_violations(state, manager=manager, metrics=metrics)
        snap = metrics.snapshot()
        assert snap["counters"]["violations_evaluations_total"][""] == 1
        assert "violations_containers" in snap["gauges"]


class TestTraceFileReading:
    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceFileError, match="cannot read"):
            read_trace(str(tmp_path / "nope.jsonl"))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(TraceFileError, match="no events"):
            read_trace(str(path))

    def test_corrupt_mid_file_names_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "a", "seq": 0}\nnot json\n{"kind": "b"}\n')
        with pytest.raises(TraceFileError, match="line 2"):
            read_trace(str(path))

    def test_trailing_partial_line_tolerated(self, tmp_path):
        path = tmp_path / "cut.jsonl"
        path.write_text('{"kind": "a", "seq": 0}\n{"kind": "b", "se')
        trace = read_trace(str(path))
        assert trace.truncated
        assert [e["kind"] for e in trace.events] == ["a"]
        with pytest.raises(TraceFileError):
            read_trace(str(path), allow_partial_tail=False)

    def test_directory_gets_actionable_error(self, tmp_path):
        with pytest.raises(TraceFileError, match="is a directory"):
            read_trace(str(tmp_path))

    def test_bench_json_gets_actionable_error(self, tmp_path):
        path = tmp_path / "BENCH_timeline.json"
        path.write_text(json.dumps(
            {"schema": 2, "benchmarks": {"fig11a": {"series": {}}}},
            indent=2,
        ))
        with pytest.raises(TraceFileError, match="bench-compare"):
            read_trace(str(path))

    def test_non_event_json_gets_actionable_error(self, tmp_path):
        path = tmp_path / "notatrace.jsonl"
        path.write_text('{"kind": "a", "seq": 0}\n{"hello": "world"}\n')
        with pytest.raises(TraceFileError, match="no 'kind' field"):
            read_trace(str(path))

    def test_cli_dashboard_actionable_error(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["dashboard", str(tmp_path)]) == 1
        assert "is a directory" in capsys.readouterr().err

    def test_cli_trace_report_bench_file_error(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"benchmarks": {}}, indent=2))
        assert main(["trace-report", str(path)]) == 1
        assert "bench-compare" in capsys.readouterr().err


class TestCli:
    def test_trace_report_empty_file_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["trace-report", str(path)]) == 1
        assert "no events" in capsys.readouterr().err

    def test_trace_report_tolerates_truncated(self, tmp_path, capsys,
                                              isolate_obs):
        path = _traced_run(tmp_path / "t.jsonl")
        text = path.read_text()
        path.write_text(text[:-20])  # cut into the final line
        from repro.cli import main

        assert main(["trace-report", str(path)]) == 0
        assert "partial line" in capsys.readouterr().out

    def test_dashboard_end_to_end(self, tmp_path, capsys, isolate_obs):
        from repro.cli import main

        path = _traced_run(tmp_path / "t.jsonl")
        json_out = tmp_path / "dash.json"
        html_out = tmp_path / "dash.html"
        status = main([
            "dashboard", str(path), "--json", str(json_out),
            "--html", str(html_out), "--fail-on-breach",
        ])
        assert status == 0
        out = capsys.readouterr().out
        assert "SLO verdict: pass" in out
        assert "replay: OK" in out
        summary = json.loads(json_out.read_text())
        assert summary["series"]["utilization"]["points"]
        html = html_out.read_text()
        assert html.lstrip().startswith("<!DOCTYPE html>")
        assert "<svg" in html and "utilization" in html

    def test_dashboard_missing_trace_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["dashboard", str(tmp_path / "nope.jsonl")]) == 1
        assert "dashboard:" in capsys.readouterr().err

    def test_dashboard_fail_on_breach(self, tmp_path, capsys, isolate_obs):
        from repro.cli import main

        path = _traced_run(tmp_path / "t.jsonl")
        rules = tmp_path / "slo.json"
        rules.write_text(json.dumps([
            {"name": "impossible", "series": "utilization",
             "agg": "max", "op": "<=", "threshold": -1.0},
        ]))
        assert main(["dashboard", str(path), "--slo", str(rules)]) == 0
        assert main([
            "dashboard", str(path), "--slo", str(rules), "--fail-on-breach",
        ]) == 3
        assert "failing on SLO breach" in capsys.readouterr().err
