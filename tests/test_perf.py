"""Tests for the placement→performance model (calibration invariants)."""

from __future__ import annotations

import pytest

from repro import ClusterState, Resource, build_cluster
from repro.perf import (
    ITERATIVE_PARAMS,
    SERVING_PARAMS,
    LatencyModel,
    extract_features,
    iterative_runtime,
    lookup_distance_classes,
    sample_lookup_latencies,
    serving_runtime,
    serving_throughput,
    tail_latency_factor,
    worker_slowdowns,
)
from repro.perf.features import PlacementFeatures


def make_features(
    workers_per_node: dict[str, int],
    *,
    external: dict[str, float] | None = None,
    racks: int = 1,
    cluster_util: float = 0.0,
    class_counts: dict[str, int] | None = None,
) -> PlacementFeatures:
    return PlacementFeatures(
        app_id="app",
        workers_per_node=workers_per_node,
        class_workers_per_node=class_counts or dict(workers_per_node),
        external_util=external or {n: 0.0 for n in workers_per_node},
        distinct_nodes=len(workers_per_node),
        distinct_racks=racks,
        total_workers=sum(workers_per_node.values()),
        cluster_util=cluster_util,
    )


def spread(workers: int, per_node: int, **kw) -> PlacementFeatures:
    nodes = {}
    remaining = workers
    i = 0
    while remaining > 0:
        take = min(per_node, remaining)
        nodes[f"n{i}"] = take
        remaining -= take
        i += 1
    return make_features(nodes, **kw)


class TestFeatureExtraction:
    def test_extracts_collocation_and_external(self):
        topo = build_cluster(2, racks=2, memory_mb=16 * 1024)
        state = ClusterState(topo)
        state.allocate("a/w0", "n00000", Resource(2048, 1), ("tf", "tf_w"), "a")
        state.allocate("a/w1", "n00000", Resource(2048, 1), ("tf", "tf_w"), "a")
        state.allocate("a/w2", "n00001", Resource(2048, 1), ("tf", "tf_w"), "a")
        state.allocate("b/w0", "n00000", Resource(2048, 1), ("tf", "tf_w"), "b")
        state.allocate("bg", "n00001", Resource(4096, 1), ("task",), "bg")
        feats = extract_features(state, "a", "tf_w")
        assert feats.workers_per_node == {"n00000": 2, "n00001": 1}
        assert feats.class_workers_per_node["n00000"] == 3  # b's worker counts
        assert feats.external_util["n00001"] == pytest.approx(4096 / 16384)
        assert feats.distinct_racks == 2
        assert feats.max_collocation() == 3

    def test_empty_app(self):
        state = ClusterState(build_cluster(2))
        feats = extract_features(state, "ghost", "w")
        assert feats.total_workers == 0
        assert worker_slowdowns(feats, ITERATIVE_PARAMS) == [1.0]


class TestSlowdownModel:
    def test_isolated_worker_is_baseline(self):
        feats = spread(1, 1)
        assert worker_slowdowns(feats, ITERATIVE_PARAMS) == [1.0]

    def test_collocation_monotone(self):
        """More collocation (same spread direction) never speeds you up."""
        prev = 0.0
        for per_node in (1, 2, 4, 8):
            feats = spread(8, per_node)
            worst = max(worker_slowdowns(feats, ITERATIVE_PARAMS))
            assert worst >= prev
            prev = worst

    def test_external_util_slows(self):
        clean = spread(4, 2)
        dirty = spread(4, 2, external={"n0": 0.7, "n1": 0.7})
        assert max(worker_slowdowns(dirty, ITERATIVE_PARAMS)) > max(
            worker_slowdowns(clean, ITERATIVE_PARAMS)
        )

    def test_cgroups_reduce_but_keep_interference(self):
        feats = spread(8, 8, external={"n0": 0.5})
        raw = max(worker_slowdowns(feats, ITERATIVE_PARAMS))
        isolated = max(worker_slowdowns(feats, ITERATIVE_PARAMS, cgroups=True))
        assert 1.0 < isolated < raw

    def test_steep_regime_beyond_core_budget(self):
        """Crossing the core budget costs more per worker than before it."""
        params = ITERATIVE_PARAMS
        below = max(worker_slowdowns(spread(16, 16), params))
        above = max(worker_slowdowns(spread(32, 32), params))
        per_worker_below = (below - 1) / 15
        per_worker_above = (above - 1) / 31
        assert per_worker_above > per_worker_below


class TestCardinalitySweetSpot:
    """The Fig. 2d calibration targets."""

    def runtime_at(self, cardinality: int, util: float) -> float:
        feats = spread(
            32, cardinality,
            external={f"n{i}": util for i in range(32)},
            cluster_util=util,
        )
        return iterative_runtime(100.0, feats)

    def test_interior_optimum_high_util(self):
        """At 70% utilisation, 16-per-node beats both extremes."""
        r1 = self.runtime_at(1, 0.7)
        r16 = self.runtime_at(16, 0.7)
        r32 = self.runtime_at(32, 0.7)
        assert r16 < r1 and r16 < r32

    def test_paper_ratios_high_util(self):
        """~42% faster than full affinity, ~34% faster than anti-affinity."""
        r1, r16, r32 = (self.runtime_at(k, 0.7) for k in (1, 16, 32))
        assert r16 / r32 == pytest.approx(0.58, abs=0.12)
        assert r16 / r1 == pytest.approx(0.66, abs=0.12)

    def test_optimum_shifts_down_at_low_util(self):
        """At 5% utilisation the optimum moves to ~4 per node."""
        runtimes = {k: self.runtime_at(k, 0.05) for k in (1, 4, 8, 16, 32)}
        best = min(runtimes, key=runtimes.get)
        assert best in (4, 8)
        assert runtimes[4] < runtimes[1]
        assert runtimes[4] < runtimes[16]

    def test_optimum_depends_on_load(self):
        """The optimal cardinality differs between load levels — the paper's
        key observation motivating cardinality constraints."""
        best_low = min((1, 4, 8, 16, 32), key=lambda k: self.runtime_at(k, 0.05))
        best_high = min((1, 4, 8, 16, 32), key=lambda k: self.runtime_at(k, 0.7))
        assert best_high > best_low


class TestServingModel:
    def test_anti_affinity_beats_collocation(self):
        """Fig. 2b: collocated region servers lose ~34% throughput."""
        solo = spread(10, 1, external={f"n{i}": 0.6 for i in range(10)})
        packed = spread(10, 3, external={f"n{i}": 0.6 for i in range(4)})
        t_solo = serving_throughput(100.0, solo)
        t_packed = serving_throughput(100.0, packed)
        assert t_packed < t_solo
        assert t_packed / t_solo == pytest.approx(0.66, abs=0.15)

    def test_cgroups_recover_part_of_loss(self):
        packed = spread(10, 3, external={f"n{i}": 0.6 for i in range(4)})
        raw = serving_throughput(100.0, packed)
        iso = serving_throughput(100.0, packed, cgroups=True)
        solo = serving_throughput(100.0, spread(10, 1, external={f"n{i}": 0.6 for i in range(10)}))
        assert raw < iso < solo

    def test_tail_latency_inflation(self):
        """p99 inflation reaches ~3.9x for heavy collocation (Fig. 2b text)."""
        packed = spread(10, 3, external={f"n{i}": 0.6 for i in range(4)})
        factor = tail_latency_factor(packed)
        assert 2.0 < factor < 6.0

    def test_serving_runtime_inverse_of_throughput(self):
        good = spread(10, 1)
        bad = spread(10, 5)
        assert serving_runtime(100.0, bad) > serving_runtime(100.0, good)


class TestLatencyModel:
    def make_state(self):
        topo = build_cluster(4, racks=2, memory_mb=16 * 1024)
        return ClusterState(topo)

    def test_distance_classes(self):
        state = self.make_state()
        state.allocate("st/0", "n00000", Resource(1024, 1), ("storm",), "st")
        state.allocate("st/1", "n00002", Resource(1024, 1), ("storm",), "st")  # same rack
        state.allocate("st/2", "n00001", Resource(1024, 1), ("storm",), "st")  # other rack
        state.allocate("mc/0", "n00000", Resource(1024, 1), ("mem",), "mc")
        classes = lookup_distance_classes(state, "st", "mc")
        assert sorted(classes) == ["node", "rack", "remote"]

    def test_unplaced_app_rejected(self):
        state = self.make_state()
        with pytest.raises(ValueError):
            lookup_distance_classes(state, "st", "mc")

    def test_latency_ordering(self):
        """Mean sampled latency: node < rack < remote, ~4.6x node->rack."""
        def mean(cls):
            samples = sample_lookup_latencies([cls], LatencyModel(samples_per_pair=4000))
            return sum(samples) / len(samples)

        node, rack, remote = mean("node"), mean("rack"), mean("remote")
        assert node < rack < remote
        assert rack / node == pytest.approx(4.6, rel=0.3)

    def test_sampling_deterministic_by_seed(self):
        a = sample_lookup_latencies(["node"], LatencyModel(seed=3))
        b = sample_lookup_latencies(["node"], LatencyModel(seed=3))
        assert a == b
