"""Property-based placement invariants, across every scheduler.

Whatever the algorithm — the ILP (either backend) or any of the greedy
heuristics — a :class:`PlacementResult` must respect the structural
constraints of the paper's formulation on *arbitrary* inputs:

* node capacity on every resource dimension (Eq. 3): the batch's
  placements plus whatever was already on the node never exceed capacity;
* all-or-nothing per LRA (Eq. 4): an application either has every one of
  its containers placed or none;
* no container placed twice (Eq. 2): container ids are unique across the
  proposal and refer to nodes that exist;
* placement is a *proposal* (Fig. 4 step 2→3): the live cluster state is
  untouched after ``place`` returns.

Hypothesis drives cluster shapes, batch compositions and constraint mixes;
shrinking turns any violation into a minimal counterexample.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import (
    ClusterState,
    ConstraintManager,
    ConstraintUnawareScheduler,
    ContainerRequest,
    IlpScheduler,
    LRARequest,
    NodeCandidatesScheduler,
    Resource,
    SerialScheduler,
    TagPopularityScheduler,
    build_cluster,
)
from repro.core.constraints import affinity, anti_affinity, cardinality

SCHEDULER_FACTORIES = {
    "ilp-highs": lambda: IlpScheduler(time_limit_s=10.0),
    "ilp-bnb": lambda: IlpScheduler(backend="bnb", time_limit_s=10.0),
    "serial": SerialScheduler,
    "tag-popularity": TagPopularityScheduler,
    "node-candidates": NodeCandidatesScheduler,
    "constraint-unaware": ConstraintUnawareScheduler,
}

TAGS = ["web", "db", "cache", "mon"]


@st.composite
def batches(draw):
    """(cluster kwargs, LRA batch) pairs small enough for the ILP."""
    num_nodes = draw(st.integers(min_value=2, max_value=8))
    racks = draw(st.integers(min_value=1, max_value=min(3, num_nodes)))
    memory_mb = draw(st.sampled_from([2048, 4096, 8192]))
    vcores = draw(st.integers(min_value=2, max_value=6))
    num_apps = draw(st.integers(min_value=1, max_value=3))
    requests = []
    for a in range(num_apps):
        app_id = f"app-{a}"
        tag = draw(st.sampled_from(TAGS))
        n_containers = draw(st.integers(min_value=1, max_value=4))
        container_mem = draw(st.sampled_from([256, 1024, 3072, 6144]))
        container_cores = draw(st.integers(min_value=1, max_value=3))
        containers = [
            ContainerRequest(
                f"{app_id}/c{i}",
                Resource(container_mem, container_cores),
                frozenset({tag, app_id}),
            )
            for i in range(n_containers)
        ]
        constraints = []
        kind = draw(st.sampled_from(["none", "affinity", "anti", "cardinality"]))
        other = draw(st.sampled_from(TAGS))
        hard = draw(st.booleans())
        if kind == "affinity":
            constraints.append(affinity(app_id, other, hard=hard))
        elif kind == "anti":
            constraints.append(anti_affinity(app_id, other, hard=hard))
        elif kind == "cardinality":
            constraints.append(cardinality(app_id, tag, 0, 2, hard=hard))
        requests.append(LRARequest(app_id, containers, tuple(constraints), ()))
    cluster = dict(num_nodes=num_nodes, racks=racks, memory_mb=memory_mb, vcores=vcores)
    return cluster, requests


def check_invariants(scheduler, cluster, requests):
    topology = build_cluster(
        cluster["num_nodes"],
        racks=cluster["racks"],
        memory_mb=cluster["memory_mb"],
        vcores=cluster["vcores"],
    )
    state = ClusterState(topology)
    manager = ConstraintManager(topology)
    for request in requests:
        manager.register_application(request)
    free_before = {n.node_id: state.free_resources(n.node_id) for n in topology}

    result = scheduler.place(requests, state, manager)

    # Proposal only: the live state must be untouched (Fig. 4).
    free_after = {n.node_id: state.free_resources(n.node_id) for n in topology}
    assert free_after == free_before, "place() leaked allocations into the state"

    node_ids = {n.node_id for n in topology}
    capacity = {n.node_id: n.capacity for n in topology}

    # Eq. 2: each container at most once, and on a real node.
    seen_containers = [p.container_id for p in result.placements]
    assert len(seen_containers) == len(set(seen_containers)), "container placed twice"
    for placement in result.placements:
        assert placement.node_id in node_ids, f"unknown node {placement.node_id}"

    # Eq. 3: per-node load within capacity on every dimension.
    for node_id in node_ids:
        load = Resource(0, 0)
        for placement in result.placements:
            if placement.node_id == node_id:
                load = load + placement.resource
        assert load.fits(capacity[node_id]), (
            f"node {node_id}: load {load} exceeds capacity {capacity[node_id]}"
        )

    # Eq. 4: all-or-nothing per application, and a clean partition of the
    # batch into placed and rejected.
    placed_counts = {r.app_id: 0 for r in requests}
    for placement in result.placements:
        assert placement.app_id in placed_counts, "placement for unknown app"
        placed_counts[placement.app_id] += 1
    rejected = set(result.rejected_apps)
    for request in requests:
        count = placed_counts[request.app_id]
        if request.app_id in rejected:
            assert count == 0, f"{request.app_id} rejected but partially placed"
        else:
            assert count == len(request.containers), (
                f"{request.app_id} placed {count}/{len(request.containers)} containers"
            )


def _make_test(factory):
    @settings(max_examples=25, deadline=None)
    @given(batch=batches())
    def run(batch):
        cluster, requests = batch
        check_invariants(factory(), cluster, requests)

    return run


for _name, _factory in SCHEDULER_FACTORIES.items():
    globals()[f"test_invariants_{_name.replace('-', '_')}"] = _make_test(_factory)
del _name, _factory
