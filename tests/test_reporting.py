"""Tests for the ASCII reporting helpers and the public API surface."""

from __future__ import annotations

import pytest

import repro
from repro.reporting import banner, render_cdf_summary, render_series, render_table


class TestRenderTable:
    def test_alignment_and_separator(self):
        text = render_table(["name", "value"], [["a", 1.5], ["long-name", 22.25]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) == {"-"}
        assert "22.25" in lines[3] or "22.25" in text

    def test_float_format(self):
        text = render_table(["x"], [[1.23456]], float_format="{:.1f}")
        assert "1.2" in text and "1.23" not in text

    def test_non_float_cells_passthrough(self):
        text = render_table(["x"], [["abc"], [7]])
        assert "abc" in text and "7" in text


class TestRenderSeries:
    def test_columns(self):
        text = render_series(
            "util", [10, 30], {"MEDEA": [0.0, 1.0], "J-KUBE": [5.0, 9.0]}
        )
        assert "util" in text and "MEDEA" in text and "J-KUBE" in text
        assert "9.00" in text

    def test_row_per_x(self):
        text = render_series("x", [1, 2, 3], {"s": [1.0, 2.0, 3.0]})
        assert len(text.splitlines()) == 5  # header + sep + 3 rows


class TestCdfSummaryAndBanner:
    def test_summary_percentiles(self):
        text = render_cdf_summary("lat", [1.0, 2.0, 3.0], unit="ms")
        assert text.startswith("lat:")
        assert "p50=2.00ms" in text

    def test_summary_empty(self):
        assert "(empty)" in render_cdf_summary("x", [])

    def test_banner(self):
        text = banner("Figure 9a")
        assert "Figure 9a" in text
        assert text.count("=") >= 120


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_subpackage_all_exports(self):
        import repro.apps
        import repro.cluster
        import repro.core
        import repro.failures
        import repro.metrics
        import repro.perf
        import repro.sim
        import repro.solver
        import repro.taskscheduler
        import repro.workloads

        for module in (
            repro.apps, repro.cluster, repro.core, repro.failures,
            repro.metrics, repro.perf, repro.sim, repro.solver,
            repro.taskscheduler, repro.workloads,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name} missing"
