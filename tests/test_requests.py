"""Tests for the submission API (LRARequest / TaskRequest / ContainerRequest)."""

from __future__ import annotations

import pytest

from repro import (
    CompoundConstraint,
    ContainerRequest,
    LRARequest,
    Resource,
    TaskRequest,
    affinity,
    anti_affinity,
    next_app_id,
)
from repro.tags import app_id_tag


class TestContainerRequest:
    def test_tag_validation(self):
        with pytest.raises(ValueError):
            ContainerRequest("c", Resource(1, 1), frozenset({"bad tag"}))

    def test_with_extra_tags(self):
        c = ContainerRequest("c", Resource(1, 1), frozenset({"a"}))
        extended = c.with_extra_tags(["b"])
        assert extended.tags == {"a", "b"}
        assert c.tags == {"a"}  # original untouched

    def test_immutable(self):
        c = ContainerRequest("c", Resource(1, 1), frozenset({"a"}))
        with pytest.raises(AttributeError):
            c.container_id = "other"  # type: ignore[misc]


class TestLRARequest:
    def containers(self, n=2, app="a"):
        return [
            ContainerRequest(f"{app}/c{i}", Resource(1024, 1), frozenset({"w"}))
            for i in range(n)
        ]

    def test_app_id_tag_auto_attached(self):
        req = LRARequest("a", self.containers())
        assert all(app_id_tag("a") in c.tags for c in req.containers)

    def test_empty_app_id_rejected(self):
        with pytest.raises(ValueError):
            LRARequest("", self.containers())

    def test_no_containers_rejected(self):
        with pytest.raises(ValueError):
            LRARequest("a", [])

    def test_duplicate_container_ids_rejected(self):
        dup = [
            ContainerRequest("a/c0", Resource(1, 1), frozenset({"w"})),
            ContainerRequest("a/c0", Resource(1, 1), frozenset({"w"})),
        ]
        with pytest.raises(ValueError):
            LRARequest("a", dup)

    def test_total_resource(self):
        req = LRARequest("a", self.containers(3))
        assert req.total_resource() == Resource(3 * 1024, 3)

    def test_all_simple_constraints_includes_compound(self):
        c1 = affinity("w", "x")
        c2 = anti_affinity("w", "y")
        comp = CompoundConstraint(((c2,),))
        req = LRARequest("a", self.containers(), [c1], [comp])
        assert set(req.all_simple_constraints()) == {c1, c2}

    def test_len_and_repr(self):
        req = LRARequest("a", self.containers(4))
        assert len(req) == 4
        assert "a" in repr(req)

    def test_queue_and_priority(self):
        req = LRARequest("a", self.containers(), priority=5, queue="prod")
        assert req.priority == 5 and req.queue == "prod"


class TestTaskRequestAndIds:
    def test_task_defaults(self):
        t = TaskRequest("t1", "app", Resource(1024, 1))
        assert t.locality == ()
        assert t.duration_s == 10.0
        assert t.queue == "default"

    def test_next_app_id_unique(self):
        ids = {next_app_id() for _ in range(50)}
        assert len(ids) == 50

    def test_next_app_id_prefix(self):
        assert next_app_id("svc").startswith("svc-")
