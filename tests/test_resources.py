"""Unit tests for the Resource vector."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro import Resource
from repro.cluster.resources import ZERO

resources = st.builds(
    Resource,
    memory_mb=st.integers(min_value=0, max_value=1 << 20),
    vcores=st.integers(min_value=0, max_value=256),
)


class TestConstruction:
    def test_fields(self):
        r = Resource(2048, 2)
        assert r.memory_mb == 2048
        assert r.vcores == 2

    def test_negative_memory_rejected(self):
        with pytest.raises(ValueError):
            Resource(-1, 0)

    def test_negative_vcores_rejected(self):
        with pytest.raises(ValueError):
            Resource(0, -5)

    def test_zero_constant(self):
        assert ZERO.is_zero()
        assert not Resource(1, 0).is_zero()

    def test_immutable(self):
        r = Resource(1, 1)
        with pytest.raises(AttributeError):
            r.memory_mb = 5  # type: ignore[misc]

    def test_str(self):
        assert str(Resource(1024, 2)) == "<1024MB, 2c>"


class TestArithmetic:
    def test_add(self):
        assert Resource(1, 2) + Resource(3, 4) == Resource(4, 6)

    def test_sub(self):
        assert Resource(10, 5) - Resource(4, 2) == Resource(6, 3)

    def test_sub_clamps_at_zero(self):
        assert Resource(2, 1) - Resource(5, 9) == ZERO

    def test_sub_clamps_per_dimension(self):
        assert Resource(10, 1) - Resource(4, 3) == Resource(6, 0)

    def test_mul(self):
        assert Resource(100, 2) * 3 == Resource(300, 6)

    def test_rmul(self):
        assert 2 * Resource(100, 2) == Resource(200, 4)

    def test_mul_fraction_truncates(self):
        assert Resource(100, 3) * 0.5 == Resource(50, 1)

    def test_mul_negative_rejected(self):
        with pytest.raises(ValueError):
            Resource(1, 1) * -2

    @given(a=resources, b=resources)
    def test_add_commutative(self, a, b):
        assert a + b == b + a

    @given(a=resources, b=resources)
    def test_sub_never_negative(self, a, b):
        result = a - b
        assert result.memory_mb >= 0 and result.vcores >= 0

    @given(a=resources, b=resources)
    def test_add_then_sub_is_identity(self, a, b):
        assert (a + b) - b == a


class TestComparison:
    def test_fits_true(self):
        assert Resource(1, 1).fits(Resource(2, 2))

    def test_fits_exact(self):
        assert Resource(2, 2).fits(Resource(2, 2))

    def test_fits_false_memory(self):
        assert not Resource(3, 1).fits(Resource(2, 2))

    def test_fits_false_vcores(self):
        assert not Resource(1, 3).fits(Resource(2, 2))

    def test_dominates(self):
        assert Resource(4, 4).dominates(Resource(3, 4))
        assert not Resource(4, 4).dominates(Resource(5, 1))

    @given(a=resources, b=resources)
    def test_fits_iff_dominated(self, a, b):
        assert a.fits(b) == b.dominates(a)

    @given(a=resources)
    def test_zero_fits_everything(self, a):
        assert ZERO.fits(a)


class TestProjections:
    def test_scalar_is_memory(self):
        assert Resource(4096, 2).scalar() == 4096.0

    def test_dominant_share_memory_bound(self):
        total = Resource(100, 100)
        assert Resource(50, 10).dominant_share(total) == pytest.approx(0.5)

    def test_dominant_share_cpu_bound(self):
        total = Resource(100, 100)
        assert Resource(10, 80).dominant_share(total) == pytest.approx(0.8)

    def test_dominant_share_zero_total(self):
        assert Resource(5, 5).dominant_share(ZERO) == 0.0

    def test_iter_unpacks(self):
        mem, cpu = Resource(7, 3)
        assert (mem, cpu) == (7, 3)
