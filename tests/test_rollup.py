"""Streaming rollups (``repro.obs.rollup``).

The rollup plane's contract: bounded ``ROLLUP_*.json`` files whose size
is a function of configuration (not run length), atomic flushes, a full
dashboard renderable from the rollup alone, shared state with the live
``/snapshot`` endpoint, and the ambient install/env wiring.
"""

from __future__ import annotations

import json

import pytest

from repro import Resource, TagPopularityScheduler, build_cluster
from repro.core.requests import TaskRequest
from repro.obs.events import EventKind
from repro.obs.metrics import Metrics, set_metrics
from repro.obs.rollup import (
    ENV_ROLLUP,
    ROLLUP_SCHEMA,
    RollupSink,
    RollupState,
    build_dashboard_from_rollup,
    get_rollup,
    install_rollup,
    is_rollup_doc,
    load_rollup,
    rollup_from_env,
    shutdown_rollup,
)
from repro.obs.trace import Tracer, get_tracer, set_tracer
from repro.sim import ClusterSimulation, SimConfig
from repro.workloads.lra_gen import hbase_population


@pytest.fixture()
def isolate_obs():
    prev_tracer = set_tracer(None)
    prev_metrics = set_metrics(Metrics())
    yield
    shutdown_rollup()
    set_tracer(prev_tracer)
    set_metrics(prev_metrics)


def _run_sim(tracer, *, horizon=50.0, tasks_per_s=8):
    topology = build_cluster(24, racks=3, memory_mb=8 * 1024, vcores=8)
    sim = ClusterSimulation(
        topology,
        TagPopularityScheduler(),
        config=SimConfig(
            scheduling_interval_s=10.0,
            heartbeat_interval_s=1.0,
            horizon_s=horizon,
            engine="ondemand",
        ),
        tracer=tracer,
    )
    for i, lra in enumerate(hbase_population(1)):
        sim.submit_lra(lra, at=float(2 * i))

    def submit(engine):
        second = int(engine.now)
        for j in range(tasks_per_s):
            sim.submit_task_now(
                TaskRequest(
                    task_id=f"s{second}-{j}",
                    app_id=f"job-{second % 3}",
                    resource=Resource(512, 1),
                    duration_s=3.0,
                )
            )

    sim.engine.schedule_periodic(1.0, submit, until=20.0)
    sim.run()
    return sim


class TestRollupSink:
    def test_flushes_during_run_and_on_close(self, tmp_path):
        path = tmp_path / "ROLLUP_run.json"
        sink = RollupSink(path, interval_s=10.0)
        tracer = Tracer([sink])
        _run_sim(tracer)
        tracer.close()
        doc = load_rollup(path)
        assert doc["schema"] == ROLLUP_SCHEMA
        # Periodic flushes (50 sim-s / 10 s interval) plus the final one.
        assert doc["rollup"]["flushes"] >= 4
        assert doc["rollup"]["events"] > 100
        assert "utilization" in doc["series"]

    def test_file_size_bounded_by_config_not_run_length(self, tmp_path):
        """Twice the events must not mean twice the rollup: the document
        holds aggregates (downsampled series), not raw events."""
        sizes = {}
        for name, horizon in (("short", 40.0), ("long", 400.0)):
            path = tmp_path / f"ROLLUP_{name}.json"
            tracer = Tracer([RollupSink(path, interval_s=10.0)])
            _run_sim(tracer, horizon=horizon)
            tracer.close()
            sizes[name] = (path.stat().st_size,
                           load_rollup(path)["rollup"]["events"])
        short_size, short_events = sizes["short"]
        long_size, long_events = sizes["long"]
        assert long_events > short_events  # genuinely more events
        assert long_size < short_size * 3  # ...but not proportionally bigger

    def test_event_interval_flush_for_clockless_streams(self, tmp_path):
        path = tmp_path / "ROLLUP_ec.json"
        sink = RollupSink(path, event_interval=10)
        tracer = Tracer([sink])
        for i in range(25):  # no time= → event-count fallback drives flushes
            tracer.emit("task.submit", data={"task_id": f"t-{i}"})
        assert path.exists()  # flushed mid-stream, before close
        tracer.close()
        assert load_rollup(path)["rollup"]["events"] == 25

    def test_flush_is_atomic_replacement(self, tmp_path):
        path = tmp_path / "ROLLUP_a.json"
        sink = RollupSink(path, event_interval=5)
        tracer = Tracer([sink])
        for i in range(23):
            tracer.emit("task.submit", data={"task_id": f"t-{i}"})
            if path.exists():
                load_rollup(path)  # every observable state parses cleanly
        tracer.close()
        assert not list(tmp_path.glob("*.tmp*"))  # no temp litter


class TestRollupDashboard:
    def test_dashboard_renders_from_rollup_alone(self, tmp_path):
        path = tmp_path / "ROLLUP_d.json"
        tracer = Tracer([RollupSink(path)])
        _run_sim(tracer)
        tracer.close()
        dash = build_dashboard_from_rollup(load_rollup(path))
        assert dash["series"]["utilization"]["points"]
        assert dash["slo"]["verdict"] in ("pass", "fail")
        assert dash["profile"]["spans"]  # span tree survives aggregation
        assert dash["meta"]["events"] > 0
        # Replay is explicitly marked skipped, not silently absent.
        assert dash["replay"]["ok"]
        assert any("rollup" in w for w in dash["replay"]["warnings"])

    def test_dashboard_cli_accepts_rollup_doc(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "ROLLUP_cli.json"
        tracer = Tracer([RollupSink(path)])
        _run_sim(tracer)
        tracer.close()
        json_out = tmp_path / "dash.json"
        assert main(["dashboard", str(path), "--json", str(json_out)]) == 0
        assert "SLO" in capsys.readouterr().out
        assert json.loads(json_out.read_text())["series"]

    def test_load_rollup_error_contract(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read"):
            load_rollup(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ValueError, match="corrupt"):
            load_rollup(bad)
        other = tmp_path / "other.json"
        other.write_text('{"schema": "something/else"}')
        with pytest.raises(ValueError, match="rollup document"):
            load_rollup(other)
        assert not is_rollup_doc({"schema": "x"})


class TestAmbientWiring:
    def test_install_is_idempotent_and_shutdown_flushes(
        self, isolate_obs, tmp_path
    ):
        path = tmp_path / "ROLLUP_amb.json"
        sink = install_rollup(path)
        assert install_rollup(tmp_path / "other.json") is sink
        assert get_rollup() is sink
        get_tracer().emit(
            EventKind.SIM_STATE_HASH, time=1.0,
            data={"hash": "h", "containers": 1, "utilization": 0.5,
                  "utilization_by_rack": {}, "pending_tasks": 0,
                  "pending_lras": 0, "nodes_down": 0},
        )
        shutdown_rollup()
        assert get_rollup() is None
        assert load_rollup(path)["rollup"]["events"] == 1
        # Second shutdown is a no-op, not an error.
        shutdown_rollup()

    def test_install_enables_sink_only_tracer(self, isolate_obs, tmp_path):
        assert not get_tracer().enabled
        install_rollup(tmp_path / "ROLLUP_x.json")
        assert get_tracer().enabled  # rollups work without a trace file

    def test_rollup_from_env(self, isolate_obs, tmp_path):
        assert rollup_from_env({}) is None
        assert rollup_from_env({ENV_ROLLUP: "off"}) is None
        path = tmp_path / "ROLLUP_env.json"
        sink = rollup_from_env({ENV_ROLLUP: str(path)})
        assert sink is not None and sink.path == str(path)

    def test_snapshot_and_rollup_share_state(self, isolate_obs, tmp_path):
        """The live endpoint and the on-disk rollup are two views of one
        RollupState: what /snapshot serves is what the file gets."""
        from repro.obs.serve import install as install_server, shutdown_server

        server = install_server(0)
        try:
            path = tmp_path / "ROLLUP_share.json"
            sink = install_rollup(path)
            assert sink.state is server.rollup
        finally:
            shutdown_rollup()
            shutdown_server()


class TestRollupState:
    def test_sampling_composes_with_rollups(self, tmp_path):
        """Rollups aggregate the *kept* stream; sampling out lifecycles
        shrinks counts but keeps the protected anchors driving the
        headline series."""
        from repro.obs.sample import SamplingPolicy, TraceSampler

        path = tmp_path / "ROLLUP_s.json"
        tracer = Tracer(
            [RollupSink(path)],
            sampler=TraceSampler(
                SamplingPolicy.parse("task=0.2,dispatch=0,seed=7")
            ),
        )
        _run_sim(tracer)
        tracer.close()
        doc = load_rollup(path)
        assert doc["series"]["utilization"]["points"]  # protected anchors
        kinds = doc["meta"]["kinds"]
        assert EventKind.ENGINE_DISPATCH not in kinds
        assert doc["rollup"]["events"] < 1000

    def test_state_to_doc_shape(self):
        state = RollupState()
        doc = state.document()
        assert doc["schema"] == ROLLUP_SCHEMA
        assert doc["rollup"]["events"] == 0
