"""Property-based tests over all LRA schedulers.

For randomly generated clusters and LRA batches, every scheduler must
uphold the scheduling contract: capacity safety, all-or-nothing placement,
unique assignments, and a pristine state after placement (proposals only).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    ClusterState,
    ConstraintManager,
    ConstraintUnawareScheduler,
    ContainerRequest,
    IlpScheduler,
    JKubePlusPlusScheduler,
    JKubeScheduler,
    LRARequest,
    NodeCandidatesScheduler,
    Resource,
    SerialScheduler,
    TagPopularityScheduler,
    anti_affinity,
    build_cluster,
    cardinality,
)
from repro.core.heuristics import relevant_constraints

SCHEDULER_FACTORIES = [
    lambda: IlpScheduler(time_limit_s=10.0, mip_rel_gap=0.05),
    SerialScheduler,
    TagPopularityScheduler,
    NodeCandidatesScheduler,
    JKubeScheduler,
    JKubePlusPlusScheduler,
    lambda: ConstraintUnawareScheduler(seed=0),
]


@st.composite
def cluster_and_batch(draw):
    num_nodes = draw(st.integers(2, 5))
    num_apps = draw(st.integers(1, 3))
    apps = []
    for a in range(num_apps):
        n_containers = draw(st.integers(1, 4))
        mem = draw(st.sampled_from([512, 1024, 2048]))
        tag = draw(st.sampled_from(["w", "v"]))
        constraints = []
        if draw(st.booleans()):
            constraints.append(
                draw(st.sampled_from([
                    anti_affinity(tag, tag, "node"),
                    cardinality(tag, tag, 0, 1, "node"),
                    cardinality(tag, tag, 0, 2, "rack"),
                ]))
            )
        apps.append(
            LRARequest(
                f"p-{a}",
                [
                    ContainerRequest(f"p-{a}/c{i}", Resource(mem, 1), frozenset({tag}))
                    for i in range(n_containers)
                ],
                constraints,
            )
        )
    return num_nodes, apps


@pytest.mark.parametrize("factory", SCHEDULER_FACTORIES)
@settings(max_examples=12, deadline=None)
@given(data=cluster_and_batch())
def test_scheduler_contract(factory, data):
    num_nodes, apps = data
    topo = build_cluster(num_nodes, racks=2, memory_mb=4 * 1024, vcores=4)
    state = ClusterState(topo)
    manager = ConstraintManager(topo)
    for app in apps:
        manager.register_application(app)
    scheduler = factory()
    result = scheduler.place(apps, state, manager)

    # 1. Proposal only: state untouched.
    assert len(state.containers) == 0
    assert all(node.free == node.capacity for node in topo)

    # 2. Unique container assignments on existing nodes.
    ids = [p.container_id for p in result.placements]
    assert len(ids) == len(set(ids))
    node_ids = set(topo.node_ids())
    assert all(p.node_id in node_ids for p in result.placements)

    # 3. All-or-nothing per app, and placed/rejected partition the batch.
    placed_apps = result.placed_apps()
    by_app = {app.app_id: 0 for app in apps}
    for p in result.placements:
        by_app[p.app_id] += 1
    for app in apps:
        if app.app_id in placed_apps:
            assert by_app[app.app_id] == len(app.containers)
            assert app.app_id not in result.rejected_apps
        else:
            assert by_app[app.app_id] == 0
            assert app.app_id in result.rejected_apps

    # 4. Capacity safety: the proposal can actually be applied.
    for p in result.placements:
        state.allocate(p.container_id, p.node_id, p.resource, p.tags, p.app_id)
    for node in topo:
        assert node.free.memory_mb >= 0 and node.free.vcores >= 0


class TestRelevantConstraints:
    def test_subject_match_kept(self):
        c = anti_affinity("w", "x", "node")
        assert relevant_constraints([c], frozenset({"w"})) == [c]

    def test_target_match_kept(self):
        c = anti_affinity("w", "x", "node")
        assert relevant_constraints([c], frozenset({"x"})) == [c]

    def test_unrelated_dropped(self):
        c = anti_affinity("w", "x", "node")
        assert relevant_constraints([c], frozenset({"z"})) == []

    def test_conjunction_target_requires_all_tags(self):
        c = anti_affinity("w", ["x", "y"], "node")
        assert relevant_constraints([c], frozenset({"x"})) == []
        assert relevant_constraints([c], frozenset({"x", "y"})) == [c]
