"""Tests for the discrete-event engine and the cluster simulation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import Resource, SerialScheduler, TaskRequest, build_cluster
from repro.sim import ClusterSimulation, SimConfig, SimulationEngine
from tests.helpers import make_lra


class TestEngine:
    def test_events_fire_in_time_order(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(5.0, lambda e: fired.append(5))
        engine.schedule_at(1.0, lambda e: fired.append(1))
        engine.schedule_at(3.0, lambda e: fired.append(3))
        engine.run()
        assert fired == [1, 3, 5]

    def test_fifo_among_simultaneous(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(1.0, lambda e: fired.append("a"))
        engine.schedule_at(1.0, lambda e: fired.append("b"))
        engine.run()
        assert fired == ["a", "b"]

    def test_schedule_in(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule_in(2.0, lambda e: seen.append(e.now))
        engine.run()
        assert seen == [2.0]

    def test_past_scheduling_rejected(self):
        engine = SimulationEngine()
        engine.schedule_at(5.0, lambda e: e.schedule_at(1.0, lambda _: None))
        with pytest.raises(ValueError):
            engine.run()

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            SimulationEngine().schedule_in(-1, lambda e: None)

    def test_run_until_stops_clock(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(5.0, lambda e: fired.append(5))
        engine.schedule_at(15.0, lambda e: fired.append(15))
        end = engine.run(until=10.0)
        assert fired == [5] and end == 10.0
        engine.run()
        assert fired == [5, 15]

    def test_cancellation(self):
        engine = SimulationEngine()
        fired = []
        event = engine.schedule_at(1.0, lambda e: fired.append(1))
        engine.cancel(event)
        engine.run()
        assert fired == []
        assert engine.pending() == 0

    def test_periodic(self):
        engine = SimulationEngine()
        ticks = []
        engine.schedule_periodic(2.0, lambda e: ticks.append(e.now), until=7.0)
        engine.run()
        assert ticks == [2.0, 4.0, 6.0]

    def test_periodic_bad_interval(self):
        with pytest.raises(ValueError):
            SimulationEngine().schedule_periodic(0, lambda e: None)

    def test_step(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(1.0, lambda e: fired.append(1))
        assert engine.step() is True
        assert engine.step() is False

    def test_periodic_returns_cancellable_handle(self):
        engine = SimulationEngine()
        ticks = []
        handle = engine.schedule_periodic(2.0, lambda e: ticks.append(e.now))
        assert handle.active
        engine.run(5.0)
        assert ticks == [2.0, 4.0]
        assert handle.fired == 2
        handle.cancel()
        assert not handle.active
        engine.run(20.0)
        assert ticks == [2.0, 4.0]

    def test_periodic_cancel_mid_run_stops_series(self):
        engine = SimulationEngine()
        ticks = []

        def tick(e):
            ticks.append(e.now)
            if len(ticks) == 3:
                handle.cancel()

        handle = engine.schedule_periodic(1.0, tick)
        engine.run(10.0)
        assert ticks == [1.0, 2.0, 3.0]

    def test_engine_cancel_accepts_periodic_handle(self):
        engine = SimulationEngine()
        ticks = []
        handle = engine.schedule_periodic(1.0, lambda e: ticks.append(e.now))
        engine.cancel(handle)
        engine.run(5.0)
        assert ticks == [] and handle.cancelled

    @settings(max_examples=20, deadline=None)
    @given(times=st.lists(st.floats(min_value=0, max_value=1e6), max_size=25))
    def test_arbitrary_schedules_fire_sorted(self, times):
        engine = SimulationEngine()
        fired = []
        for t in times:
            engine.schedule_at(t, lambda e, t=t: fired.append(t))
        engine.run()
        assert fired == sorted(fired)


class TestClusterSimulation:
    def make_sim(self, **kw):
        topo = build_cluster(4, racks=2, memory_mb=8 * 1024, vcores=8)
        config = SimConfig(scheduling_interval_s=5.0, horizon_s=100.0)
        return ClusterSimulation(topo, SerialScheduler(), config=config, **kw)

    def test_lra_placed_at_next_cycle(self):
        sim = self.make_sim()
        sim.submit_lra(make_lra("a", containers=2), at=1.0)
        sim.run(20.0)
        assert len(sim.state.containers_of_app("a")) == 2
        assert sim.lra_latencies() == [pytest.approx(4.0)]

    def test_task_lifecycle_frees_resources(self):
        sim = self.make_sim()
        sim.submit_task(
            TaskRequest("t1", "app", Resource(1024, 1), duration_s=3.0), at=0.5
        )
        sim.run(1.5)
        assert "t1" in sim.state.containers
        sim.run(10.0)
        assert "t1" not in sim.state.containers
        assert sim.task_latencies() == [pytest.approx(0.5)]

    def test_lra_teardown_after_duration(self):
        sim = self.make_sim()
        sim.submit_lra(make_lra("a", containers=2), at=1.0, duration_s=10.0)
        sim.run(10.0)
        assert len(sim.state.containers_of_app("a")) == 2
        sim.run(30.0)
        assert len(sim.state.containers_of_app("a")) == 0

    def test_node_availability_flips(self):
        sim = self.make_sim()
        sim.set_node_availability("n00000", False, at=2.0)
        sim.set_node_availability("n00000", True, at=4.0)
        sim.run(3.0)
        assert not sim.state.topology.node("n00000").available
        sim.run(5.0)
        assert sim.state.topology.node("n00000").available

    def test_cycle_observer_called(self):
        sim = self.make_sim()
        calls = []
        sim.cycle_observers.append(lambda s, r: calls.append(len(r)))
        sim.submit_lra(make_lra("a", containers=2), at=1.0)
        sim.run(11.0)
        assert calls and calls[0] == 2

    def test_foreign_task_scheduler_rejected(self):
        from repro import CapacityScheduler, ClusterState

        topo = build_cluster(2)
        foreign = CapacityScheduler(ClusterState(build_cluster(2)))
        with pytest.raises(ValueError):
            ClusterSimulation(topo, SerialScheduler(), task_scheduler=foreign)

    def test_stop_periodic_activity(self):
        sim = self.make_sim()
        sim.submit_lra(make_lra("a", containers=2), at=1.0)
        sim.run(6.0)
        assert sim.heartbeat_handle is not None and sim.heartbeat_handle.active
        sim.stop_periodic_activity()
        sim.submit_lra(make_lra("b", containers=2), at=7.0)
        sim.run(50.0)
        # No further cycles run, so "b" never gets placed.
        assert len(sim.state.containers_of_app("b")) == 0
        assert not sim.cycle_handle.active
