"""Simulation determinism and event-loop semantics.

The paper's evaluation leans on simulation replays being comparable across
runs (§7.1); that only holds if the discrete-event engine is fully
deterministic.  These tests run the same seeded workload twice and require
*byte-identical* traces — scheduling-cycle events, completed-container
latencies, and the final container→node mapping — plus pin down the
engine's edge semantics: past scheduling is rejected, and cancellation is
honoured whether it happens before, during, or after the event fires.
"""

from __future__ import annotations

import pytest

from repro import (
    ConstraintUnawareScheduler,
    NodeCandidatesScheduler,
    Resource,
    build_cluster,
)
from repro.core.requests import TaskRequest
from repro.sim import ClusterSimulation, SimConfig
from repro.sim.engine import SimulationEngine
from tests.helpers import make_lra


def run_traced_simulation(seed: int) -> str:
    """One full simulated run, serialized into a canonical trace string."""
    topology = build_cluster(8, racks=2, memory_mb=8 * 1024, vcores=8)
    sim = ClusterSimulation(
        topology,
        ConstraintUnawareScheduler(seed=seed),
        config=SimConfig(scheduling_interval_s=10.0, heartbeat_interval_s=1.0,
                         horizon_s=200.0),
    )
    trace: list[str] = []
    sim.cycle_observers.append(
        lambda s, result: trace.append(
            f"t={s.engine.now:.3f} placed={sorted(p.container_id + '@' + p.node_id for p in result.placements)}"
            f" rejected={sorted(result.rejected_apps)}"
        )
    )
    for i in range(6):
        sim.submit_lra(
            make_lra(f"lra-{i}", containers=2, memory_mb=1024),
            at=float(3 * i),
            # Half tear down mid-run, half outlive the horizon.
            duration_s=60.0 if i % 2 == 0 else None,
        )
    for i in range(10):
        sim.submit_task(
            TaskRequest(f"task-{i}", f"job-{i % 3}", Resource(512, 1),
                        duration_s=5.0 + i),
            at=float(i),
        )
    sim.run()
    trace.append(f"task_latencies={sim.task_latencies()}")
    trace.append(f"lra_latencies={sim.lra_latencies()}")
    final = sorted(
        (cid, placed.node_id) for cid, placed in sim.state.containers.items()
    )
    trace.append(f"final={final}")
    return "\n".join(trace)


def test_same_seed_runs_are_byte_identical() -> None:
    first = run_traced_simulation(seed=42)
    second = run_traced_simulation(seed=42)
    assert first.encode() == second.encode()
    # Sanity: the trace is non-trivial (cycles fired, containers placed).
    assert "placed=" in first and "final=[(" in first


def test_deterministic_across_scheduler_types() -> None:
    """The engine itself is deterministic regardless of scheduler choice."""

    def run_once() -> str:
        topology = build_cluster(6, racks=2)
        sim = ClusterSimulation(
            topology,
            NodeCandidatesScheduler(),
            config=SimConfig(horizon_s=100.0),
        )
        events: list[str] = []
        sim.cycle_observers.append(
            lambda s, r: events.append(f"{s.engine.now}:{len(r.placements)}")
        )
        for i in range(4):
            sim.submit_lra(make_lra(f"d-{i}", containers=3), at=float(i))
        sim.run()
        return "|".join(events)

    assert run_once() == run_once()


def run_large_cluster(engine_mode: str, *, tracer=None) -> tuple[str, int]:
    """A seeded 1000-node run; returns (canonical trace, heartbeats fired).

    The trace records only scheduling cycles that placed or rejected
    something: the on-demand engine legitimately skips the no-op ticks the
    periodic engine fires, and everything *observable* must still match.
    """
    topology = build_cluster(1000, racks=20, memory_mb=16 * 1024, vcores=16)
    sim = ClusterSimulation(
        topology,
        ConstraintUnawareScheduler(seed=7),
        config=SimConfig(scheduling_interval_s=10.0, heartbeat_interval_s=1.0,
                         horizon_s=120.0, engine=engine_mode),
        tracer=tracer,
    )
    trace: list[str] = []
    sim.cycle_observers.append(
        lambda s, r: trace.append(
            f"t={s.engine.now:.3f}"
            f" placed={sorted(p.container_id + '@' + p.node_id for p in r.placements)}"
            f" rejected={sorted(r.rejected_apps)}"
        )
        if r.placements or r.rejected_apps
        else None
    )
    for i in range(40):
        sim.submit_lra(
            make_lra(f"big-{i:03d}", containers=4, memory_mb=2048),
            at=1.5 * i,
            duration_s=50.0 if i % 4 == 0 else None,
        )
    for i in range(150):
        sim.submit_task(
            TaskRequest(f"bigtask-{i:04d}", f"bigjob-{i % 7}",
                        Resource(1024, 1), duration_s=3.0 + (i % 11)),
            at=float(i % 90),
        )
    sim.run()
    trace.append(
        "latencies="
        + repr([
            (a.task_id, a.latency_s)
            for a in sim.task_scheduler.completed_allocations
        ])
    )
    final = sorted(
        (cid, placed.node_id) for cid, placed in sim.state.containers.items()
    )
    trace.append(f"final={final}")
    trace.append(f"fingerprint={sim.state.fingerprint()}")
    canon = "\n".join(line for line in trace if line is not None)
    return canon, sim.heartbeat_handle.fired


def test_engines_byte_identical_at_scale() -> None:
    """Periodic vs on-demand event engines: identical observables on a
    seeded 1k-node cluster, with on-demand firing strictly fewer ticks."""
    periodic, periodic_fired = run_large_cluster("periodic")
    ondemand, ondemand_fired = run_large_cluster("ondemand")
    assert periodic.encode() == ondemand.encode()
    assert "placed=" in periodic and "fingerprint=" in periodic
    # The point of on-demand mode: idle heartbeats never fire.
    assert ondemand_fired < periodic_fired


def test_tracing_does_not_perturb_the_run() -> None:
    """MEDEA_TRACE-style tracing must be write-only: enabling an event
    tracer cannot change placements, latencies, or fingerprints."""
    from repro.obs.trace import MemorySink, Tracer

    quiet, _ = run_large_cluster("ondemand")
    sink = MemorySink()
    traced, _ = run_large_cluster("ondemand", tracer=Tracer([sink], enabled=True))
    assert quiet.encode() == traced.encode()
    assert len(sink) > 0  # the tracer actually captured the run


class TestScheduleAtSemantics:
    def test_past_scheduling_rejected(self) -> None:
        engine = SimulationEngine()
        engine.schedule_at(5.0, lambda e: None)
        engine.run()
        assert engine.now == 5.0
        with pytest.raises(ValueError, match="past"):
            engine.schedule_at(4.999, lambda e: None)

    def test_present_scheduling_allowed(self) -> None:
        engine = SimulationEngine()
        engine.schedule_at(5.0, lambda e: None)
        engine.run()
        fired = []
        engine.schedule_at(5.0, lambda e: fired.append(e.now))
        engine.run()
        assert fired == [5.0]

    def test_negative_delay_rejected(self) -> None:
        engine = SimulationEngine()
        with pytest.raises(ValueError, match="non-negative"):
            engine.schedule_in(-1.0, lambda e: None)


class TestCancellation:
    def test_cancelled_event_never_fires(self) -> None:
        engine = SimulationEngine()
        fired = []
        event = engine.schedule_at(1.0, lambda e: fired.append("a"))
        engine.schedule_at(2.0, lambda e: fired.append("b"))
        engine.cancel(event)
        engine.run()
        assert fired == ["b"]

    def test_cancel_updates_pending_count(self) -> None:
        engine = SimulationEngine()
        e1 = engine.schedule_at(1.0, lambda e: None)
        engine.schedule_at(2.0, lambda e: None)
        assert engine.pending() == 2
        engine.cancel(e1)
        assert engine.pending() == 1

    def test_cancel_from_within_callback(self) -> None:
        engine = SimulationEngine()
        fired = []
        later = engine.schedule_at(2.0, lambda e: fired.append("later"))
        engine.schedule_at(1.0, lambda e: e.cancel(later))
        engine.run()
        assert fired == []
        assert engine.now == 1.0  # cancelled events do not advance the clock

    def test_cancel_after_fire_is_noop(self) -> None:
        engine = SimulationEngine()
        fired = []
        event = engine.schedule_at(1.0, lambda e: fired.append("x"))
        engine.run()
        engine.cancel(event)  # must not raise
        assert fired == ["x"]

    def test_step_skips_cancelled(self) -> None:
        engine = SimulationEngine()
        fired = []
        e1 = engine.schedule_at(1.0, lambda e: fired.append(1))
        engine.schedule_at(2.0, lambda e: fired.append(2))
        engine.cancel(e1)
        assert engine.step() is True  # lands on the *second* event
        assert fired == [2]
        assert engine.step() is False
