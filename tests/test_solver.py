"""Tests for the MILP modelling layer and both solver backends."""

from __future__ import annotations

import math
import random

import pytest

from repro.solver import (
    INF,
    BnBOptions,
    MilpModel,
    Sense,
    SolveStatus,
    solve,
    solve_branch_and_bound,
    solve_highs,
)


def knapsack_model():
    """max 10x + 6y + 4z s.t. x+y+z<=2, 5x+4y+3z<=8, binary."""
    model = MilpModel(Sense.MAXIMIZE)
    x = model.add_binary("x")
    y = model.add_binary("y")
    z = model.add_binary("z")
    model.add_objective_term(x, 10)
    model.add_objective_term(y, 6)
    model.add_objective_term(z, 4)
    model.add_le({x: 1, y: 1, z: 1}, 2)
    model.add_le({x: 5, y: 4, z: 3}, 8)
    return model, (x, y, z)


class TestModel:
    def test_variable_indices_sequential(self):
        model = MilpModel()
        assert model.add_binary("a") == 0
        assert model.add_continuous("b") == 1
        assert model.num_variables == 2
        assert model.variable_name(1) == "b"

    def test_invalid_bounds_rejected(self):
        model = MilpModel()
        with pytest.raises(ValueError):
            model.add_variable("x", lower=2, upper=1)

    def test_vacuous_constraint_rejected(self):
        model = MilpModel()
        model.add_binary("x")
        with pytest.raises(ValueError):
            model.add_constraint({0: 1.0})

    def test_inverted_constraint_bounds_rejected(self):
        model = MilpModel()
        model.add_binary("x")
        with pytest.raises(ValueError):
            model.add_constraint({0: 1.0}, lower=2, upper=1)

    def test_unknown_variable_rejected(self):
        model = MilpModel()
        with pytest.raises(IndexError):
            model.add_le({5: 1.0}, 1.0)

    def test_objective_accumulates(self):
        model = MilpModel()
        x = model.add_binary("x")
        model.add_objective_term(x, 2.0)
        model.add_objective_term(x, 3.0)
        assert model.objective_vector()[x] == 5.0

    def test_zero_coefficient_removed(self):
        model = MilpModel()
        x = model.add_binary("x")
        model.add_objective_term(x, 2.0)
        model.set_objective_coefficient(x, 0.0)
        assert model.objective_vector()[x] == 0.0

    def test_matrix_export(self):
        model, (x, y, z) = knapsack_model()
        matrix, lb, ub = model.constraint_matrix()
        assert matrix.shape == (2, 3)
        assert ub.tolist() == [2.0, 8.0]
        assert all(b == -INF for b in lb)

    def test_integrality_vector(self):
        model = MilpModel()
        model.add_binary("x")
        model.add_continuous("y")
        assert model.integrality().tolist() == [1, 0]
        assert model.integer_indices() == [0]

    def test_is_feasible(self):
        model, _ = knapsack_model()
        assert model.is_feasible([1, 0, 1])
        assert not model.is_feasible([1, 1, 1])      # count constraint
        assert not model.is_feasible([0.5, 0, 0])    # integrality
        assert not model.is_feasible([2, 0, 0])      # bounds

    def test_objective_value(self):
        model, _ = knapsack_model()
        assert model.objective_value([1, 0, 1]) == 14.0


@pytest.mark.parametrize("backend", ["highs", "bnb"])
class TestBackends:
    def test_knapsack_optimum(self, backend):
        model, (x, y, z) = knapsack_model()
        solution = solve(model, backend=backend)
        assert solution.status is SolveStatus.OPTIMAL
        # x+y needs weight 9 > 8, so the optimum is x+z = 14.
        assert solution.objective == pytest.approx(14.0)
        assert solution.rounded(x) == 1 and solution.rounded(z) == 1

    def test_minimization(self, backend):
        model = MilpModel(Sense.MINIMIZE)
        x = model.add_variable("x", lower=0, upper=10, integer=True)
        model.add_objective_term(x, 1.0)
        model.add_ge({x: 1.0}, 3.2)
        solution = solve(model, backend=backend)
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.rounded(x) == 4

    def test_infeasible(self, backend):
        model = MilpModel()
        x = model.add_binary("x")
        model.add_ge({x: 1.0}, 2.0)
        solution = solve(model, backend=backend)
        assert solution.status is SolveStatus.INFEASIBLE
        assert not solution.status.has_solution()

    def test_equality_constraint(self, backend):
        model = MilpModel(Sense.MAXIMIZE)
        x = model.add_variable("x", lower=0, upper=5, integer=True)
        y = model.add_variable("y", lower=0, upper=5, integer=True)
        model.add_objective_term(x, 1.0)
        model.add_eq({x: 1.0, y: 1.0}, 4.0)
        solution = solve(model, backend=backend)
        assert solution.objective == pytest.approx(4.0)
        assert solution.rounded(x) == 4

    def test_range_constraint(self, backend):
        model = MilpModel(Sense.MINIMIZE)
        x = model.add_variable("x", lower=0, upper=100, integer=True)
        model.add_objective_term(x, 1.0)
        model.add_constraint({x: 1.0}, lower=7, upper=9)
        solution = solve(model, backend=backend)
        assert solution.rounded(x) == 7

    def test_continuous_mix(self, backend):
        """MIP with continuous slack: min x + 10*s, x int, x + s >= 2.5."""
        model = MilpModel(Sense.MINIMIZE)
        x = model.add_variable("x", lower=0, upper=10, integer=True)
        s = model.add_continuous("s")
        model.add_objective_term(x, 1.0)
        model.add_objective_term(s, 10.0)
        model.add_ge({x: 1.0, s: 1.0}, 2.5)
        solution = solve(model, backend=backend)
        assert solution.status is SolveStatus.OPTIMAL
        assert solution.objective == pytest.approx(3.0)
        assert solution.rounded(x) == 3

    def test_solution_is_feasible(self, backend):
        model, _ = knapsack_model()
        solution = solve(model, backend=backend)
        assert model.is_feasible(solution.values)


class TestBnBSpecifics:
    def test_unbounded(self):
        model = MilpModel(Sense.MAXIMIZE)
        x = model.add_variable("x", lower=0, upper=INF, integer=True)
        model.add_objective_term(x, 1.0)
        model.add_ge({x: 1.0}, 0.0)
        solution = solve_branch_and_bound(model)
        assert solution.status is SolveStatus.UNBOUNDED

    def test_node_limit_returns_feasible_or_error(self):
        model, _ = knapsack_model()
        solution = solve_branch_and_bound(model, BnBOptions(max_nodes=1))
        assert solution.status in (
            SolveStatus.OPTIMAL,
            SolveStatus.FEASIBLE,
            SolveStatus.ERROR,
        )

    def test_explores_nodes(self):
        model, _ = knapsack_model()
        solution = solve_branch_and_bound(model)
        assert solution.nodes_explored >= 1

    def test_unknown_backend_rejected(self):
        model, _ = knapsack_model()
        with pytest.raises(ValueError):
            solve(model, backend="cplex")


class TestCrossValidation:
    """The two backends must agree on random small MILPs."""

    @pytest.mark.parametrize("seed", range(12))
    def test_random_milp_agreement(self, seed):
        rng = random.Random(seed)
        n_vars, n_cons = rng.randint(2, 6), rng.randint(1, 5)
        model = MilpModel(Sense.MAXIMIZE)
        for i in range(n_vars):
            model.add_variable(f"x{i}", lower=0, upper=rng.randint(1, 4), integer=True)
        for i in range(n_vars):
            model.add_objective_term(i, rng.randint(-5, 10))
        for _ in range(n_cons):
            coeffs = {
                i: rng.randint(-3, 5)
                for i in range(n_vars)
                if rng.random() < 0.7
            }
            if not coeffs:
                continue
            model.add_le(coeffs, rng.randint(2, 12))
        a = solve_highs(model)
        b = solve_branch_and_bound(model)
        assert a.status == b.status
        if a.status.has_solution():
            assert a.objective == pytest.approx(b.objective, abs=1e-6)
            assert model.is_feasible(a.values)
            assert model.is_feasible(b.values)
