"""Differential test: branch-and-bound vs HiGHS on seeded random MILPs.

Two independent solver implementations (``scipy.optimize.milp`` and the
from-scratch branch-and-bound core) are run over a few hundred randomly
generated models — mixed binary / general-integer / continuous columns,
both objective senses, equality / inequality / range rows, deliberately
including infeasible and unbounded instances — and must agree on the solve
status and, when optimal, on the objective value.  The branch-and-bound
solver is exercised both with presolve on and off, and every optimal
solution it returns is re-checked for feasibility against the model.

A disagreement here means one of the solvers is wrong; historically this
kind of fuzz harness is what catches tolerance bugs, bad prunes, and
presolve reductions that are not actually exact.
"""

from __future__ import annotations

import random

import pytest

from repro.solver import BnBOptions, solve
from repro.solver.model import INF, MilpModel, Sense, SolveStatus

_OBJ_TOL = 1e-5
_SEEDS_PER_CHUNK = 50
_CHUNKS = 4  # 200 models overall


def random_model(rng: random.Random) -> MilpModel:
    """A small random MILP; roughly half the draws are feasible."""
    sense = rng.choice([Sense.MINIMIZE, Sense.MAXIMIZE])
    model = MilpModel(sense=sense, name="fuzz")
    n = rng.randint(1, 7)
    for j in range(n):
        kind = rng.random()
        if kind < 0.5:
            model.add_binary(f"b{j}")
        elif kind < 0.75:
            lo = rng.randint(-3, 0)
            model.add_variable(
                f"i{j}", lower=lo, upper=lo + rng.randint(1, 7), integer=True
            )
        else:
            upper = rng.choice([2.0, 5.0, 10.0, INF])
            model.add_continuous(f"c{j}", lower=0.0, upper=upper)
    for j in range(n):
        if rng.random() < 0.85:
            model.add_objective_term(j, rng.randint(-5, 5))
    for i in range(rng.randint(0, 2 * n)):
        support = rng.sample(range(n), rng.randint(1, n))
        coeffs = {j: rng.randint(-4, 4) for j in support}
        coeffs = {j: c for j, c in coeffs.items() if c}
        if not coeffs:
            continue
        kind = rng.random()
        rhs = rng.randint(-6, 10)
        if kind < 0.40:
            model.add_le(coeffs, rhs, name=f"r{i}")
        elif kind < 0.70:
            model.add_ge(coeffs, rhs - rng.randint(0, 8), name=f"r{i}")
        elif kind < 0.85:
            model.add_eq(coeffs, rng.randint(-3, 6), name=f"r{i}")
        else:
            model.add_constraint(
                coeffs, lower=rhs - rng.randint(1, 6), upper=rhs, name=f"r{i}"
            )
    return model


def assert_agreement(model: MilpModel, bnb_options: BnBOptions, seed: int) -> None:
    reference = solve(model, backend="highs")
    candidate = solve(model, backend="bnb", options=bnb_options)
    context = f"seed={seed} presolve={bnb_options.presolve}"
    assert candidate.status is not SolveStatus.ERROR, context
    assert reference.status is not SolveStatus.ERROR, context
    assert candidate.status == reference.status, (
        f"{context}: bnb={candidate.status} highs={reference.status}"
    )
    if reference.status in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE):
        assert abs(candidate.objective - reference.objective) < _OBJ_TOL, (
            f"{context}: bnb obj {candidate.objective} "
            f"!= highs obj {reference.objective}"
        )
        # The returned point must actually attain the claimed objective.
        assert model.is_feasible(candidate.values), context
        recomputed = model.objective_value(candidate.values)
        assert abs(recomputed - candidate.objective) < _OBJ_TOL, context


@pytest.mark.parametrize("chunk", range(_CHUNKS))
@pytest.mark.parametrize("presolve", [True, False])
def test_random_milps_agree(chunk: int, presolve: bool) -> None:
    options = BnBOptions(presolve=presolve, time_limit_s=30.0)
    for offset in range(_SEEDS_PER_CHUNK):
        seed = chunk * _SEEDS_PER_CHUNK + offset
        model = random_model(random.Random(seed))
        assert_agreement(model, options, seed)


@pytest.mark.parametrize("presolve", [True, False])
def test_handcrafted_infeasible(presolve: bool) -> None:
    model = MilpModel(sense=Sense.MINIMIZE)
    x = model.add_binary("x")
    y = model.add_binary("y")
    model.add_ge({x: 1.0, y: 1.0}, 3.0)  # two binaries cannot sum to 3
    assert_agreement(model, BnBOptions(presolve=presolve), seed=-1)


@pytest.mark.parametrize("presolve", [True, False])
def test_handcrafted_unbounded(presolve: bool) -> None:
    model = MilpModel(sense=Sense.MAXIMIZE)
    x = model.add_continuous("x", lower=0.0, upper=INF)
    b = model.add_binary("b")
    model.add_objective_term(x, 1.0)
    model.add_ge({x: 1.0, b: 1.0}, 0.0)
    assert_agreement(model, BnBOptions(presolve=presolve), seed=-2)


@pytest.mark.parametrize("presolve", [True, False])
def test_handcrafted_integer_ray(presolve: bool) -> None:
    model = MilpModel(sense=Sense.MINIMIZE)
    z = model.add_variable("z", lower=-INF, upper=0.0, integer=True)
    model.add_objective_term(z, 1.0)
    model.add_le({z: 1.0}, 0.0)
    assert_agreement(model, BnBOptions(presolve=presolve), seed=-3)
