"""Phase-accounting invariants for the branch-and-bound solver.

The solver books its effort into ``SolverStats`` phase buckets (presolve,
LP, rounding heuristic); the remainder of ``time_total_s`` is branching /
search overhead.  That attribution is what the span profiler reports, so
it must be internally consistent: every phase non-negative and the phase
sum never exceeding the total (the historical bug was the heuristic
bucket's LP-time subtraction going negative).  Checked over a population
of seeded random MILPs, with and without presolve, plus the solver's
span-phase emission when tracing is on.
"""

from __future__ import annotations

import random

import pytest

from repro.obs import EventKind, MemorySink, Metrics, Tracer, build_profile
from repro.obs.metrics import set_metrics
from repro.obs.trace import set_tracer
from repro.solver import BnBOptions, solve
from tests.test_solver_differential import random_model

#: Wall-clock slack for the phase-sum check: each phase is timed with its
#: own perf_counter pair, so rounding can push the sum a hair past total.
_CLOCK_SLACK_S = 5e-3


@pytest.fixture()
def isolate_obs():
    prev_tracer = set_tracer(None)
    prev_metrics = set_metrics(Metrics())
    yield
    set_tracer(prev_tracer)
    set_metrics(prev_metrics)


def _assert_phase_invariants(stats, context: str) -> None:
    assert stats is not None, context
    for phase in ("time_presolve_s", "time_lp_s", "time_heuristic_s",
                  "time_total_s"):
        assert getattr(stats, phase) >= 0.0, f"{context}: {phase} negative"
    phase_sum = (
        stats.time_presolve_s + stats.time_lp_s + stats.time_heuristic_s
    )
    assert phase_sum <= stats.time_total_s + _CLOCK_SLACK_S, (
        f"{context}: phases sum to {phase_sum:.6f}s "
        f"> total {stats.time_total_s:.6f}s"
    )


@pytest.mark.parametrize("presolve", [True, False])
def test_phase_sum_bounded_by_total_on_seeded_milps(presolve):
    options = BnBOptions(presolve=presolve)
    for seed in range(40):
        rng = random.Random(1000 + seed)
        model = random_model(rng)
        solution = solve(model, backend="bnb", options=options)
        _assert_phase_invariants(
            solution.stats, f"seed={seed} presolve={presolve}"
        )


def test_heuristic_time_never_negative_with_rounding_on():
    # The rounding heuristic is where the LP-time subtraction lives; force
    # it on across many models and require the bucket stays non-negative.
    options = BnBOptions(rounding_heuristic=True)
    for seed in range(30):
        model = random_model(random.Random(7000 + seed))
        solution = solve(model, backend="bnb", options=options)
        assert solution.stats.time_heuristic_s >= 0.0, f"seed={seed}"


def test_traced_solve_emits_phase_spans(isolate_obs):
    sink = MemorySink()
    set_tracer(Tracer([sink], enabled=True))
    model = random_model(random.Random(42))
    solution = solve(model, backend="bnb")
    report = build_profile(sink.events)
    assert "solver.bnb" in report.spans
    for phase in ("presolve", "lp", "heuristic"):
        path = f"solver.bnb;{phase}"
        assert path in report.spans, f"missing phase span {path}"
    # The synthetic phases mirror the stats buckets.
    stats = solution.stats
    assert report.spans["solver.bnb;lp"].total_s == pytest.approx(
        stats.time_lp_s
    )
    assert report.spans["solver.bnb;lp"].count == max(1, stats.lp_solves)
    # And the phase children never push the parent's self time negative.
    parent = report.spans["solver.bnb"]
    assert parent.self_s >= 0.0
    assert parent.total_s + _CLOCK_SLACK_S >= (
        report.spans["solver.bnb;presolve"].total_s
        + report.spans["solver.bnb;lp"].total_s
        + report.spans["solver.bnb;heuristic"].total_s
    )


def test_traced_highs_solve_emits_span(isolate_obs):
    sink = MemorySink()
    set_tracer(Tracer([sink], enabled=True))
    solve(random_model(random.Random(43)), backend="highs")
    report = build_profile(sink.events)
    assert "solver.highs" in report.spans
    # Exactly one span event per solve alongside the solver.solve record.
    assert sum(1 for e in sink.events if e.kind == EventKind.SPAN) == 1
