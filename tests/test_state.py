"""Unit tests for ClusterState: allocations, γ bookkeeping, constraint checks."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    ClusterState,
    Resource,
    affinity,
    anti_affinity,
    build_cluster,
    cardinality,
)


def put(state, cid, node, tags=("w",), mem=1024, app="a1", long_running=True):
    return state.allocate(
        cid, node, Resource(mem, 1), tags, app, long_running=long_running
    )


class TestAllocationLifecycle:
    def test_allocate_and_release(self, state):
        put(state, "c1", "n00000")
        assert "c1" in state.containers
        assert state.free_resources("n00000") == Resource(15 * 1024, 7)
        state.release("c1")
        assert "c1" not in state.containers
        assert state.free_resources("n00000") == Resource(16 * 1024, 8)

    def test_duplicate_id_rejected(self, state):
        put(state, "c1", "n00000")
        with pytest.raises(ValueError):
            put(state, "c1", "n00001")

    def test_release_unknown_rejected(self, state):
        with pytest.raises(KeyError):
            state.release("ghost")

    def test_release_application(self, state):
        put(state, "c1", "n00000", app="appA")
        put(state, "c2", "n00001", app="appA")
        put(state, "c3", "n00002", app="appB")
        victims = state.release_application("appA")
        assert len(victims) == 2
        assert set(state.containers) == {"c3"}

    def test_containers_of_app(self, state):
        put(state, "c1", "n00000", app="appA")
        put(state, "c2", "n00001", app="appB")
        assert [c.container_id for c in state.containers_of_app("appA")] == ["c1"]

    def test_total_free_excludes_unavailable(self, state):
        before = state.total_free()
        state.topology.node("n00000").available = False
        after = state.total_free()
        assert after.memory_mb == before.memory_mb - 16 * 1024


class TestGammaBookkeeping:
    def test_node_group_counts(self, state):
        put(state, "c1", "n00000", tags=("hb", "hb_m"))
        put(state, "c2", "n00000", tags=("hb", "hb_rs"))
        idx = state.group_sets_for_node("node", "n00000")[0]
        assert state.group_tag_count("node", idx, "hb") == 2
        assert state.group_tag_count("node", idx, "hb_m") == 1

    def test_rack_group_counts(self, state):
        # n00000 and n00002 are both on rack-0 (stripe across 2 racks).
        put(state, "c1", "n00000", tags=("hb",))
        put(state, "c2", "n00002", tags=("hb",))
        rack_idx = state.group_sets_for_node("rack", "n00000")[0]
        assert state.group_tag_count("rack", rack_idx, "hb") == 2

    def test_release_decrements(self, state):
        put(state, "c1", "n00000", tags=("hb",))
        state.release("c1")
        idx = state.group_sets_for_node("node", "n00000")[0]
        assert state.group_tag_count("node", idx, "hb") == 0

    def test_gamma_conjunction_min(self, state):
        put(state, "c1", "n00000", tags=("hb", "mem"))
        put(state, "c2", "n00000", tags=("hb",))
        idx = state.group_sets_for_node("node", "n00000")[0]
        assert state.gamma("node", idx, ["hb"]) == 2
        assert state.gamma("node", idx, ["hb", "mem"]) == 1

    def test_gamma_exclusion(self, state):
        put(state, "c1", "n00000", tags=("hb",))
        put(state, "c2", "n00000", tags=("hb",))
        idx = state.group_sets_for_node("node", "n00000")[0]
        assert state.gamma("node", idx, ["hb"], exclude=["hb"]) == 1

    def test_gamma_never_negative(self, state):
        idx = state.group_sets_for_node("node", "n00000")[0]
        assert state.gamma("node", idx, ["hb"], exclude=["hb"]) == 0

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_incremental_matches_recomputation(self, seed):
        """Property: after random allocate/release churn, the incremental
        per-group counters equal a from-scratch recomputation."""
        rng = random.Random(seed)
        topo = build_cluster(6, racks=2, service_units=2)
        state = ClusterState(topo)
        live: list[str] = []
        tag_pool = ["hb", "hb_rs", "tf", "storm"]
        for step in range(40):
            if live and rng.random() < 0.4:
                state.release(live.pop(rng.randrange(len(live))))
            else:
                cid = f"c{step}"
                node = rng.choice(topo.node_ids())
                tags = tuple(rng.sample(tag_pool, k=rng.randint(1, 2)))
                if topo.node(node).can_fit(Resource(512, 1)):
                    state.allocate(cid, node, Resource(512, 1), tags, "app")
                    live.append(cid)
        for group_name in topo.group_names():
            group = topo.group(group_name)
            for idx, node_set in enumerate(group.node_sets):
                for tag in tag_pool:
                    expected = sum(
                        topo.node(n).dynamic_tags().cardinality(tag)
                        for n in node_set
                    )
                    assert state.group_tag_count(group_name, idx, tag) == expected


class TestCheckPlacement:
    def test_affinity_hypothetical(self, state):
        constraint = affinity("storm", "mem", "node")
        put(state, "mc", "n00000", tags=("mem",))
        ok, extent = state.check_placement(constraint, "n00000", {"storm"}, placed=False)
        assert ok and extent == 0.0
        ok, extent = state.check_placement(constraint, "n00001", {"storm"}, placed=False)
        assert not ok and extent == pytest.approx(1.0)

    def test_anti_affinity_post_placement_excludes_self(self, state):
        """A container must not violate its own anti-affinity."""
        constraint = anti_affinity("hb_rs", "hb_rs", "node")
        put(state, "rs1", "n00000", tags=("hb", "hb_rs"))
        ok, _ = state.check_placement(
            constraint, "n00000", {"hb", "hb_rs"}, placed=True
        )
        assert ok

    def test_anti_affinity_detects_pair(self, state):
        constraint = anti_affinity("hb_rs", "hb_rs", "node")
        put(state, "rs1", "n00000", tags=("hb_rs",))
        put(state, "rs2", "n00000", tags=("hb_rs",))
        ok, extent = state.check_placement(constraint, "n00000", {"hb_rs"}, placed=True)
        assert not ok and extent == pytest.approx(1.0)

    def test_cardinality_rack_scope(self, state):
        constraint = cardinality("storm", "spark", 0, 2, "rack")
        for i, node in enumerate(["n00000", "n00002", "n00004"]):
            put(state, f"s{i}", node, tags=("spark",))
        ok, extent = state.check_placement(constraint, "n00000", {"storm"}, placed=False)
        assert not ok and extent == pytest.approx(1 / 2)
        ok, _ = state.check_placement(constraint, "n00001", {"storm"}, placed=False)
        assert ok  # other rack has no spark

    def test_subject_mismatch_is_satisfied(self, state):
        constraint = affinity("storm", "mem", "node")
        ok, extent = state.check_placement(constraint, "n00000", {"tf"}, placed=False)
        assert ok and extent == 0.0

    def test_node_outside_group_counts_as_violation(self, state):
        ids = state.topology.node_ids()
        state.topology.register_group("half", [ids[:5]])
        constraint = affinity("a", "b", "half")
        ok, extent = state.check_placement(constraint, ids[7], {"a"}, placed=False)
        assert not ok and extent >= 1.0


class TestDeltaViolations:
    def test_prefers_constraint_free_node(self, state):
        constraint = anti_affinity("hb_rs", "hb_rs", "node")
        put(state, "rs1", "n00000", tags=("hb_rs",))
        bad = state.placement_delta_violations([constraint], "n00000", {"hb_rs"})
        good = state.placement_delta_violations([constraint], "n00001", {"hb_rs"})
        assert bad > good == 0.0

    def test_reverse_direction_detected(self, state):
        """Placing a target container next to an existing subject counts."""
        constraint = anti_affinity("hb_m", "hb_sec", "node")
        put(state, "m", "n00000", tags=("hb_m",))
        delta = state.placement_delta_violations([constraint], "n00000", {"hb_sec"})
        assert delta > 0.0

    def test_affinity_gradient(self, state):
        """Extent gradient: a rack with more target containers scores
        strictly better for an unsatisfiable-min affinity."""
        constraint = affinity("w", "w", "rack", min_count=3)
        put(state, "w1", "n00000", tags=("w",))
        closer = state.placement_delta_violations([constraint], "n00002", {"w"})
        farther = state.placement_delta_violations([constraint], "n00001", {"w"})
        assert closer < farther


class TestClusterMetrics:
    def test_fragmented_fraction(self, state):
        # Fill one node to 15.5/16 GB: free 512 MB < 2 GB threshold.
        put(state, "big", "n00000", mem=15 * 1024 + 512)
        assert state.fragmented_node_fraction() == pytest.approx(0.1)

    def test_cv_zero_when_uniform(self, state):
        for i in range(10):
            put(state, f"c{i}", f"n{i:05d}", mem=1024)
        assert state.memory_utilization_cv() == pytest.approx(0.0)

    def test_cv_positive_when_skewed(self, state):
        put(state, "c0", "n00000", mem=8 * 1024)
        assert state.memory_utilization_cv() > 1.0

    def test_cluster_memory_utilization(self, state):
        put(state, "c0", "n00000", mem=16 * 1024)
        assert state.cluster_memory_utilization() == pytest.approx(0.1)


class TestMetricMemoisation:
    """Memoised cluster metrics must always agree with direct recomputation.

    The metrics are cached on the state's version counter (bumped by node
    mutation hooks on every allocate / release / availability flip); a
    stale cache would silently skew utilisation, fragmentation, and the
    fingerprint the determinism suite pins.
    """

    MUTATIONS = ("alloc", "release", "down", "up")

    def _assert_fresh(self, state: ClusterState) -> None:
        threshold = Resource(2048, 1)
        assert state.total_free() == state._compute_total_free()
        assert state.fragmented_node_fraction(threshold) == (
            state._compute_fragmented_node_fraction(threshold)
        )
        assert state.memory_utilization_cv() == (
            state._compute_memory_utilization_cv()
        )
        assert state.rack_memory_utilization() == (
            state._compute_rack_memory_utilization()
        )
        assert state.cluster_memory_utilization() == (
            state._compute_cluster_memory_utilization()
        )

    @pytest.mark.parametrize("backend", ["object", "array"])
    def test_cached_values_track_mutations(self, small_topology, backend):
        try:
            state = ClusterState(small_topology, backend=backend)
        except ValueError:
            pytest.skip("numpy unavailable")
        nodes = list(small_topology)
        rng = random.Random(5)
        live: list[str] = []
        self._assert_fresh(state)
        for step in range(120):
            kind = rng.choice(self.MUTATIONS)
            node = rng.choice(nodes)
            if kind == "alloc":
                resource = Resource(rng.choice([512, 1024, 4096]), 1)
                if node.available and node.can_fit(resource):
                    cid = f"m{step}"
                    state.allocate(cid, node.node_id, resource, ("w",), "app")
                    live.append(cid)
            elif kind == "release" and live:
                state.release(live.pop(rng.randrange(len(live))))
            else:
                node.available = kind == "up"
            self._assert_fresh(state)

    def test_memo_hit_without_mutation(self, state):
        put(state, "c0", "n00000")
        first = state.fingerprint()
        version = state.version
        assert state.fingerprint() == first
        assert state.version == version  # reads must not invalidate
        put(state, "c1", "n00001")
        assert state.version > version
        assert state.fingerprint() != first

    def test_direct_node_mutation_invalidates(self, state):
        """Flipping a node's availability directly (not through the state
        API) must still invalidate cached metrics, via the node hooks."""
        before = state.total_free()
        node = state.topology.node("n00000")
        node.available = False
        after = state.total_free()
        assert after.memory_mb == before.memory_mb - node.capacity.memory_mb
        assert state.down_node_ids() == ["n00000"]
        node.available = True
        assert state.total_free() == before
        assert state.down_node_ids() == []
