"""Differential equivalence suite for the scale-out core.

The vectorised cluster-state backend, the incrementally-maintained
candidate index, and the on-demand event engine are all pure
optimisations: same placements, same canonical traces, same fingerprints,
byte for byte.  This suite locks that contract in by running every
scenario generator the repo ships — HBase populations, utilisation-mix
populations, complexity groups, GridMix and Google-trace task streams,
with node failures thrown in — across the full (backend × engine) matrix
and diffing the results against the legacy ``(object, periodic)``
reference configuration.

Anything observable must match exactly: the per-cycle placement trace,
task-allocation latencies, the final container→node map, the placement
fingerprint, and the ground-truth violation audit.  Statistical floats
(utilisation CV) may differ in ulps between scalar and vectorised
summation, so they are compared approximately — they never feed the
canonical trace.
"""

from __future__ import annotations

import pytest

from repro import (
    ConstraintUnawareScheduler,
    NodeCandidatesScheduler,
    TagPopularityScheduler,
    build_cluster,
)
from repro.cluster.state import ClusterState, _np
from repro.core.requests import TaskRequest
from repro.obs.violations import evaluate_violations
from repro.sim import ClusterSimulation, SimConfig
from repro.workloads.googletrace import GoogleTraceConfig, generate_trace
from repro.workloads.gridmix import GridMixConfig, generate_tasks
from repro.workloads.lra_gen import (
    complexity_population,
    hbase_population,
    population_for_utilization,
)

#: The full differential matrix; ``(object, periodic)`` is the reference.
CONFIGS = [
    ("object", "periodic"),
    ("object", "ondemand"),
    ("array", "periodic"),
    ("array", "ondemand"),
]

needs_numpy = pytest.mark.skipif(_np is None, reason="numpy unavailable")


def _configs() -> list[tuple[str, str]]:
    if _np is None:  # pragma: no cover - numpy is baked into the image
        return [c for c in CONFIGS if c[0] != "array"]
    return list(CONFIGS)


#: Task streams are generated once per scenario and shared across configs
#: (generation is fully deterministic per seed — ids included — so this
#: cache is just an optimisation, not a correctness requirement).
_TASK_STREAMS: dict[str, list[tuple[float, TaskRequest]]] = {}


def _task_stream(name: str) -> list[tuple[float, TaskRequest]]:
    if name not in _TASK_STREAMS:
        if name == "hbase-gridmix":
            stream = generate_tasks(
                GridMixConfig(seed=7, mean_interarrival_s=1.0), count=60
            )
        elif name == "utilization-google":
            stream = generate_trace(GoogleTraceConfig(seed=29), count=50)
        elif name == "unaware-gridmix":
            stream = generate_tasks(
                GridMixConfig(seed=11, mean_interarrival_s=0.8), count=50
            )
        else:
            stream = iter(())
        _TASK_STREAMS[name] = list(stream)
    return _TASK_STREAMS[name]


def run_scenario(name: str, backend: str, engine: str) -> dict:
    """Run one named scenario end to end; returns everything observable."""
    topology = build_cluster(24, racks=4, memory_mb=16 * 1024, vcores=16)
    horizon = 150.0
    tasks = _task_stream(name)

    if name == "hbase-gridmix":
        scheduler = TagPopularityScheduler()
        lras = hbase_population(4, region_servers=6, max_rs_per_node=2)
        failures = [("n00003", False, 40.0), ("n00011", False, 55.0),
                    ("n00003", True, 90.0)]
    elif name == "utilization-google":
        scheduler = NodeCandidatesScheduler()
        lras = population_for_utilization(topology, 0.4, region_servers=6)
        failures = [("n00017", False, 70.0)]
    elif name == "complexity":
        scheduler = TagPopularityScheduler()
        lras = complexity_population(2, 3, containers_per_lra=6, seed=3)
        failures = []
    elif name == "unaware-gridmix":
        scheduler = ConstraintUnawareScheduler(seed=42)
        lras = hbase_population(3, region_servers=5)
        failures = []
    else:  # pragma: no cover
        raise ValueError(name)

    sim = ClusterSimulation(
        topology,
        scheduler,
        config=SimConfig(
            scheduling_interval_s=10.0,
            heartbeat_interval_s=1.0,
            horizon_s=horizon,
            engine=engine,
            backend=backend,
        ),
    )
    trace: list[str] = []
    sim.cycle_observers.append(
        lambda s, result: trace.append(
            f"t={s.engine.now:.3f}"
            f" placed={sorted(p.container_id + '@' + p.node_id for p in result.placements)}"
            f" rejected={sorted(result.rejected_apps)}"
        )
        # Only cycles that did something are recorded: the on-demand engine
        # legitimately skips the no-op ticks the periodic engine fires.
        if result.placements or result.rejected_apps
        else None
    )
    for i, lra in enumerate(lras):
        sim.submit_lra(lra, at=float(2 * i), duration_s=80.0 if i % 3 == 0 else None)
    for arrival, task in tasks:
        sim.submit_task(task, at=arrival)
    for node_id, up, at in failures:
        sim.set_node_availability(node_id, up, at=at)
    sim.run()

    state = sim.state
    report = evaluate_violations(state, manager=sim.medea.manager)
    return {
        "trace": "\n".join(line for line in trace if line is not None),
        "fingerprint": state.fingerprint(),
        "final": sorted(
            (cid, placed.node_id) for cid, placed in state.containers.items()
        ),
        "task_latencies": [
            (a.task_id, a.latency_s)
            for a in sim.task_scheduler.completed_allocations
        ],
        "down": state.down_node_ids(),
        "violations": (
            report.subject_containers,
            report.violating_containers,
            round(report.total_extent, 9),
        ),
        "total_free": state.total_free(),
        "utilization": state.cluster_memory_utilization(),
        "rack_util": state.rack_memory_utilization(),
        "frag": state.fragmented_node_fraction(),
        "cv": state.memory_utilization_cv(),
    }


#: Keys that must match the reference byte for byte / value for value.
EXACT_KEYS = (
    "trace", "fingerprint", "final", "task_latencies", "down",
    "violations", "total_free", "utilization", "frag",
)


@pytest.mark.parametrize(
    "scenario",
    ["hbase-gridmix", "utilization-google", "complexity", "unaware-gridmix"],
)
def test_backends_and_engines_are_equivalent(scenario: str) -> None:
    reference = run_scenario(scenario, "object", "periodic")
    # Sanity: the scenario actually exercised the scheduler.
    assert reference["final"], scenario
    assert reference["trace"], scenario
    for backend, engine in _configs()[1:]:
        candidate = run_scenario(scenario, backend, engine)
        for key in EXACT_KEYS:
            assert candidate[key] == reference[key], (
                f"{scenario}: {key} diverged under backend={backend} "
                f"engine={engine}"
            )
        # Vectorised float reductions may differ from scalar ones in ulps.
        assert candidate["cv"] == pytest.approx(reference["cv"], rel=1e-12)
        for rack, util in reference["rack_util"].items():
            assert candidate["rack_util"][rack] == pytest.approx(util, rel=1e-12)


@needs_numpy
def test_array_backend_is_default(monkeypatch: pytest.MonkeyPatch) -> None:
    monkeypatch.delenv("MEDEA_STATE_BACKEND", raising=False)
    state = ClusterState(build_cluster(4))
    assert state.arrays is not None


@needs_numpy
def test_backend_env_override(monkeypatch: pytest.MonkeyPatch) -> None:
    monkeypatch.setenv("MEDEA_STATE_BACKEND", "object")
    assert ClusterState(build_cluster(4)).arrays is None
    monkeypatch.setenv("MEDEA_STATE_BACKEND", "array")
    assert ClusterState(build_cluster(4)).arrays is not None
    # Explicit argument wins over the environment.
    assert ClusterState(build_cluster(4), backend="object").arrays is None
    monkeypatch.setenv("MEDEA_STATE_BACKEND", "bogus")
    with pytest.raises(ValueError, match="backend"):
        ClusterState(build_cluster(4))


def test_index_bucket_env_override(monkeypatch: pytest.MonkeyPatch) -> None:
    monkeypatch.setenv("MEDEA_INDEX_BUCKET_MB", "512")
    assert ClusterState(build_cluster(4)).index_bucket_mb == 512
    assert ClusterState(build_cluster(4), index_bucket_mb=64).index_bucket_mb == 64
    monkeypatch.setenv("MEDEA_INDEX_BUCKET_MB", "0")
    with pytest.raises(ValueError, match="bucket"):
        ClusterState(build_cluster(4))


def test_unknown_engine_mode_rejected() -> None:
    with pytest.raises(ValueError, match="engine"):
        SimConfig(engine="sometimes")
