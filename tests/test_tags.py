"""Unit tests for tags and the tag-cardinality multiset (paper §4.1)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.tags import (
    NODE_SCOPE,
    RACK_SCOPE,
    TagMultiset,
    app_id_tag,
    is_namespaced,
    tag_namespace,
    validate_tag,
)

tag_strategy = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True)


class TestValidation:
    @pytest.mark.parametrize("tag", ["hb", "hb_m", "appID:0023", "memory_critical"])
    def test_valid_tags(self, tag):
        assert validate_tag(tag) == tag

    @pytest.mark.parametrize(
        "tag", ["", "has space", "a,b", "a:b:c", ":x", "x:", "br{ace}"]
    )
    def test_invalid_tags(self, tag):
        with pytest.raises(ValueError):
            validate_tag(tag)

    def test_namespace_detection(self):
        assert is_namespaced("appID:1")
        assert not is_namespaced("hb")
        assert tag_namespace("appID:1") == "appID"
        assert tag_namespace("hb") is None

    def test_app_id_tag(self):
        assert app_id_tag("0023") == "appID:0023"

    def test_scope_constants(self):
        assert NODE_SCOPE == "node"
        assert RACK_SCOPE == "rack"


class TestMultisetBasics:
    def test_empty(self):
        ms = TagMultiset()
        assert len(ms) == 0
        assert ms.total() == 0
        assert ms.cardinality("hb") == 0

    def test_paper_example_node(self):
        """§4.1: master {hb, hb_m} + region server {hb, hb_rs} on one node."""
        ms = TagMultiset(["hb", "hb_m"])
        ms.add_all(["hb", "hb_rs"])
        assert ms.distinct() == {"hb", "hb_m", "hb_rs"}
        assert ms.cardinality("hb") == 2
        assert ms.cardinality("hb_m") == 1
        assert ms.cardinality("hb_rs") == 1

    def test_paper_example_rack_union(self):
        """§4.1: rack tag set is the union (multiset sum) of its nodes."""
        n1 = TagMultiset(["hb", "hb_m", "hb", "hb_rs"])
        n2 = TagMultiset(["hb", "hb_rs"])
        rack = n1.union_sum(n2)
        assert rack.cardinality("hb") == 3
        assert rack.cardinality("hb_m") == 1
        assert rack.cardinality("hb_rs") == 2

    def test_add_count(self):
        ms = TagMultiset()
        ms.add("x", 3)
        assert ms.cardinality("x") == 3

    def test_add_zero_is_noop(self):
        ms = TagMultiset()
        ms.add("x", 0)
        assert "x" not in ms

    def test_add_negative_rejected(self):
        with pytest.raises(ValueError):
            TagMultiset().add("x", -1)

    def test_add_validates(self):
        with pytest.raises(ValueError):
            TagMultiset().add("bad tag")

    def test_remove(self):
        ms = TagMultiset(["a", "a", "b"])
        ms.remove("a")
        assert ms.cardinality("a") == 1
        ms.remove("a")
        assert "a" not in ms

    def test_remove_more_than_present_raises(self):
        ms = TagMultiset(["a"])
        with pytest.raises(KeyError):
            ms.remove("a", 2)

    def test_remove_absent_raises(self):
        with pytest.raises(KeyError):
            TagMultiset().remove("ghost")

    def test_contains_iter_len(self):
        ms = TagMultiset(["a", "a", "b"])
        assert "a" in ms and "b" in ms
        assert sorted(ms) == ["a", "b"]
        assert len(ms) == 2
        assert ms.total() == 3

    def test_copy_is_independent(self):
        ms = TagMultiset(["a"])
        dup = ms.copy()
        dup.add("a")
        assert ms.cardinality("a") == 1
        assert dup.cardinality("a") == 2

    def test_equality(self):
        assert TagMultiset(["a", "b"]) == TagMultiset(["b", "a"])
        assert TagMultiset(["a"]) != TagMultiset(["a", "a"])

    def test_as_dict(self):
        assert TagMultiset(["a", "a"]).as_dict() == {"a": 2}

    def test_repr_sorted(self):
        assert repr(TagMultiset(["b", "a"])) == "TagMultiset({a:1, b:1})"


class TestConjunctionCardinality:
    def test_min_cardinality(self):
        ms = TagMultiset(["hb", "hb", "mem"])
        assert ms.min_cardinality(["hb", "mem"]) == 1
        assert ms.min_cardinality(["hb"]) == 2

    def test_min_cardinality_missing_tag(self):
        ms = TagMultiset(["hb"])
        assert ms.min_cardinality(["hb", "mem"]) == 0

    def test_min_cardinality_empty(self):
        assert TagMultiset(["x"]).min_cardinality([]) == 0


class TestMultisetProperties:
    @given(tags=st.lists(tag_strategy, max_size=30))
    def test_total_equals_additions(self, tags):
        ms = TagMultiset(tags)
        assert ms.total() == len(tags)

    @given(tags=st.lists(tag_strategy, min_size=1, max_size=30))
    def test_add_remove_roundtrip(self, tags):
        ms = TagMultiset(tags)
        ms.remove_all(tags)
        assert len(ms) == 0 and ms.total() == 0

    @given(a=st.lists(tag_strategy, max_size=15), b=st.lists(tag_strategy, max_size=15))
    def test_union_sum_cardinalities_add(self, a, b):
        combined = TagMultiset(a).union_sum(TagMultiset(b))
        for tag in set(a) | set(b):
            assert combined.cardinality(tag) == a.count(tag) + b.count(tag)

    @given(tags=st.lists(tag_strategy, max_size=30))
    def test_distinct_matches_set(self, tags):
        assert TagMultiset(tags).distinct() == frozenset(tags)
