"""Tests for the task-based schedulers (Capacity / Fair / FIFO) and the
LRA-placement handoff (the two-scheduler contract)."""

from __future__ import annotations

import pytest

from repro import (
    CapacityScheduler,
    ClusterState,
    ContainerPlacement,
    FairScheduler,
    FifoScheduler,
    Resource,
    TaskRequest,
    build_cluster,
)
from repro.taskscheduler import PlacementConflictError, QueueConfig
from repro.taskscheduler.queues import QueueSystem


def task(tid, mem=1024, queue="default", locality=(), app=None):
    return TaskRequest(
        task_id=tid,
        app_id=app or f"app-{tid}",
        resource=Resource(mem, 1),
        locality=tuple(locality),
        queue=queue,
    )


def build(num_nodes=4, mem=4 * 1024, cores=4):
    topo = build_cluster(num_nodes, memory_mb=mem, vcores=cores)
    return topo, ClusterState(topo)


class TestQueueSystem:
    def test_default_queue_created(self):
        qs = QueueSystem([], 1000)
        assert "default" in qs.queues

    def test_capacity_accounting(self):
        qs = QueueSystem([QueueConfig("q", 0.5)], 1000)
        queue = qs.queue("q")
        assert queue.guaranteed_mb == 500
        queue.charge(Resource(200, 1))
        assert queue.utilization() == pytest.approx(0.4)
        queue.refund(Resource(200, 1))
        assert queue.used_mb == 0

    def test_max_capacity_enforced(self):
        qs = QueueSystem([QueueConfig("q", 0.5, 0.6)], 1000)
        queue = qs.queue("q")
        queue.charge(Resource(500, 1))
        assert not queue.can_use(Resource(200, 1))
        assert queue.can_use(Resource(100, 1))

    def test_oversubscribed_capacities_rejected(self):
        with pytest.raises(ValueError):
            QueueSystem([QueueConfig("a", 0.7), QueueConfig("b", 0.7)], 1000)

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            QueueConfig("q", 0.0)
        with pytest.raises(ValueError):
            QueueConfig("q", 0.5, 0.4)

    def test_unknown_queue_raises(self):
        with pytest.raises(KeyError):
            QueueSystem([], 1000).queue("nope")


class TestHeartbeatAllocation:
    def test_task_allocated_on_heartbeat(self):
        _, state = build()
        sched = FifoScheduler(state)
        sched.submit(task("t1"), now=0.0)
        allocations = sched.handle_heartbeat("n00000", now=2.0)
        assert len(allocations) == 1
        assert allocations[0].latency_s == pytest.approx(2.0)
        assert "t1" in state.containers

    def test_node_filled_until_capacity(self):
        _, state = build(num_nodes=1, mem=4 * 1024, cores=4)
        sched = FifoScheduler(state)
        for i in range(6):
            sched.submit(task(f"t{i}"), now=0.0)
        allocations = sched.handle_heartbeat("n00000", now=1.0)
        assert len(allocations) == 4  # 4 GB / 4 cores
        assert sched.pending_tasks() == 2

    def test_release_refunds_queue_and_node(self):
        _, state = build()
        sched = FifoScheduler(state)
        sched.submit(task("t1"), now=0.0)
        sched.handle_heartbeat("n00000", now=1.0)
        sched.release_task("t1")
        assert "t1" not in state.containers
        assert sched.queues.queue("default").used_mb == 0

    def test_unavailable_node_gets_nothing(self):
        topo, state = build()
        topo.node("n00000").available = False
        sched = FifoScheduler(state)
        sched.submit(task("t1"))
        assert sched.handle_heartbeat("n00000", now=1.0) == []

    def test_task_tagged_as_short_running(self):
        _, state = build()
        sched = FifoScheduler(state)
        sched.submit(task("t1"))
        sched.handle_heartbeat("n00000", now=0.0)
        placed = state.container("t1")
        assert not placed.allocation.long_running
        assert "task" in placed.allocation.tags


class TestCapacityScheduler:
    def test_least_served_queue_first(self):
        _, state = build()
        sched = CapacityScheduler(
            state, [QueueConfig("a", 0.5), QueueConfig("b", 0.5)]
        )
        sched.submit(task("a1", queue="a"))
        sched.submit(task("b1", queue="b"))
        # Pre-charge queue a so b is less served.
        sched.queues.queue("a").charge(Resource(4096, 1))
        allocations = sched.handle_heartbeat("n00000", now=0.0)
        assert allocations[0].task_id == "b1"

    def test_locality_delay_then_relax(self):
        _, state = build()
        sched = CapacityScheduler(state)
        sched.submit(task("t1", locality=["n00003"]))
        # Non-matching heartbeats are skipped until the delay expires.
        assert sched.handle_heartbeat("n00000", now=0.0) == []
        assert sched.handle_heartbeat("n00001", now=1.0) == []
        assert sched.handle_heartbeat("n00002", now=2.0) == []
        allocations = sched.handle_heartbeat("n00001", now=3.0)
        assert len(allocations) == 1  # relaxed to any node

    def test_preferred_node_taken_immediately(self):
        _, state = build()
        sched = CapacityScheduler(state)
        sched.submit(task("t1", locality=["n00002"]))
        allocations = sched.handle_heartbeat("n00002", now=0.0)
        assert len(allocations) == 1

    def test_rack_preference_matches(self):
        topo, state = build()
        sched = CapacityScheduler(state)
        rack = topo.node("n00001").rack
        sched.submit(task("t1", locality=[rack]))
        allocations = sched.handle_heartbeat("n00001", now=0.0)
        assert len(allocations) == 1


class TestFairScheduler:
    def test_most_underserved_first(self):
        _, state = build()
        sched = FairScheduler(
            state, [QueueConfig("a", 0.5), QueueConfig("b", 0.5)]
        )
        sched.queues.queue("a").charge(Resource(8192, 1))
        sched.submit(task("a1", queue="a"))
        sched.submit(task("b1", queue="b"))
        allocations = sched.handle_heartbeat("n00000", now=0.0)
        assert allocations[0].task_id == "b1"

    def test_ties_broken_by_name(self):
        _, state = build()
        sched = FairScheduler(
            state, [QueueConfig("a", 0.5), QueueConfig("b", 0.5)]
        )
        sched.submit(task("b1", queue="b"))
        sched.submit(task("a1", queue="a"))
        allocations = sched.handle_heartbeat("n00000", now=0.0)
        assert allocations[0].task_id == "a1"


class TestLraHandoff:
    def placement(self, node="n00000", cid="lra/c0", mem=1024):
        return ContainerPlacement(
            app_id="lra",
            container_id=cid,
            node_id=node,
            resource=Resource(mem, 1),
            tags=frozenset({"w"}),
        )

    def test_apply_placement(self):
        _, state = build()
        sched = FifoScheduler(state)
        sched.apply_lra_placement(self.placement())
        placed = state.container("lra/c0")
        assert placed.allocation.long_running

    def test_conflict_raises(self):
        _, state = build(num_nodes=1, mem=1024)
        sched = FifoScheduler(state)
        sched.apply_lra_placement(self.placement(mem=1024))
        with pytest.raises(PlacementConflictError):
            sched.apply_lra_placement(self.placement(cid="lra/c1", mem=1024))

    def test_batch_rolls_back_on_conflict(self):
        _, state = build(num_nodes=1, mem=2 * 1024)
        sched = FifoScheduler(state)
        placements = [
            self.placement(cid="lra/c0", mem=1024),
            self.placement(cid="lra/c1", mem=1024),
            self.placement(cid="lra/c2", mem=1024),  # does not fit
        ]
        with pytest.raises(PlacementConflictError):
            sched.apply_lra_placements(placements)
        assert len(state.containers) == 0
