"""Unit tests for nodes, topology and node groups (paper §4.1)."""

from __future__ import annotations

import pytest

from repro import Node, NodeGroup, Resource, build_cluster
from repro.cluster.node import Allocation
from repro.cluster.topology import ClusterTopology


def alloc(cid="c1", mem=1024, cores=1, tags=("w",), app="a1"):
    return Allocation(cid, Resource(mem, cores), frozenset(tags), app)


class TestNode:
    def test_initial_state(self):
        node = Node("n1", Resource(4096, 4))
        assert node.free == Resource(4096, 4)
        assert node.used == Resource(0, 0)
        assert node.available
        assert node.container_count() == 0

    def test_allocate_updates_free_and_tags(self):
        node = Node("n1", Resource(4096, 4))
        node.allocate(alloc())
        assert node.free == Resource(3072, 3)
        assert node.dynamic_tags().cardinality("w") == 1

    def test_release_restores(self):
        node = Node("n1", Resource(4096, 4))
        node.allocate(alloc())
        node.release("c1")
        assert node.free == node.capacity
        assert node.dynamic_tags().cardinality("w") == 0

    def test_duplicate_container_rejected(self):
        node = Node("n1", Resource(4096, 4))
        node.allocate(alloc())
        with pytest.raises(ValueError):
            node.allocate(alloc())

    def test_overallocation_rejected(self):
        node = Node("n1", Resource(1024, 1))
        with pytest.raises(ValueError):
            node.allocate(alloc(mem=2048))

    def test_release_unknown_rejected(self):
        with pytest.raises(KeyError):
            Node("n1", Resource(1, 1)).release("ghost")

    def test_can_fit_respects_availability(self):
        node = Node("n1", Resource(4096, 4))
        assert node.can_fit(Resource(1024, 1))
        node.available = False
        assert not node.can_fit(Resource(1024, 1))

    def test_static_tags_in_multiset_once(self):
        node = Node("n1", Resource(4096, 4), static_tags=["gpu"])
        node.allocate(alloc())
        ms = node.tag_multiset()
        assert ms.cardinality("gpu") == 1
        assert ms.cardinality("w") == 1
        # static tags are not dynamic
        assert node.dynamic_tags().cardinality("gpu") == 0

    def test_memory_utilization(self):
        node = Node("n1", Resource(4096, 4))
        node.allocate(alloc(mem=1024))
        assert node.memory_utilization() == pytest.approx(0.25)

    def test_fragmentation_definition(self):
        """§7.4: fragmented = less free than threshold AND not fully used."""
        threshold = Resource(2048, 1)
        node = Node("n1", Resource(4096, 2))
        assert not node.is_fragmented(threshold)  # plenty free
        node.allocate(alloc(cid="a", mem=3072, cores=1))
        assert node.is_fragmented(threshold)  # 1 GB free < 2 GB
        node.allocate(alloc(cid="b", mem=1024, cores=1))
        assert not node.is_fragmented(threshold)  # fully used


class TestNodeGroup:
    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            NodeGroup("", ((),))

    def test_sets_containing(self):
        group = NodeGroup("g", (("a", "b"), ("b", "c")))
        assert group.sets_containing("b") == [("a", "b"), ("b", "c")]
        assert group.sets_containing("z") == []


class TestTopology:
    def test_predefined_groups(self, small_topology):
        assert small_topology.has_group("node")
        assert small_topology.has_group("rack")
        assert len(small_topology.group("node").node_sets) == 10
        assert len(small_topology.group("rack").node_sets) == 2

    def test_rack_striping(self):
        topo = build_cluster(6, racks=3)
        racks = {}
        for node in topo:
            racks.setdefault(node.rack, []).append(node.node_id)
        assert len(racks) == 3
        assert all(len(ids) == 2 for ids in racks.values())

    def test_register_group(self, small_topology):
        ids = small_topology.node_ids()
        group = small_topology.register_group("ud", [ids[:5], ids[5:]])
        assert len(group.node_sets) == 2
        assert small_topology.has_group("ud")

    def test_register_predefined_name_rejected(self, small_topology):
        with pytest.raises(ValueError):
            small_topology.register_group("node", [["n00000"]])

    def test_register_unknown_node_rejected(self, small_topology):
        with pytest.raises(KeyError):
            small_topology.register_group("g", [["ghost"]])

    def test_overlapping_groups_allowed(self, small_topology):
        ids = small_topology.node_ids()
        group = small_topology.register_group("ov", [ids[:6], ids[4:]])
        assert small_topology.set_indices_for_node("ov", ids[5]) == [0, 1]

    def test_unknown_group_lookup_raises(self, small_topology):
        with pytest.raises(KeyError):
            small_topology.group("nope")
        with pytest.raises(KeyError):
            small_topology.set_indices_for_node("nope", "n00000")

    def test_membership_index_consistent(self, small_topology):
        for node_id in small_topology.node_ids():
            for group_name in small_topology.group_names():
                via_index = small_topology.sets_of_group_containing(group_name, node_id)
                group = small_topology.group(group_name)
                brute = [ns for ns in group.node_sets if node_id in ns]
                assert via_index == brute

    def test_duplicate_node_ids_rejected(self):
        nodes = [Node("same", Resource(1, 1)), Node("same", Resource(1, 1))]
        with pytest.raises(ValueError):
            ClusterTopology(nodes)

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            ClusterTopology([])

    def test_total_capacity(self):
        topo = build_cluster(4, memory_mb=1000, vcores=2)
        assert topo.total_capacity() == Resource(4000, 8)


class TestBuildCluster:
    def test_domains_partition_all_nodes(self):
        topo = build_cluster(100, racks=4, upgrade_domains=7, fault_domains=3, service_units=5)
        for name, count in [("upgrade_domain", 7), ("fault_domain", 3), ("service_unit", 5)]:
            group = topo.group(name)
            assert len(group.node_sets) == count
            covered = [n for ns in group.node_sets for n in ns]
            assert sorted(covered) == sorted(topo.node_ids())

    def test_bad_args_rejected(self):
        with pytest.raises(ValueError):
            build_cluster(0)
        with pytest.raises(ValueError):
            build_cluster(5, racks=0)

    def test_node_prefix(self):
        topo = build_cluster(2, node_prefix="x")
        assert all(n.node_id.startswith("x") for n in topo)
