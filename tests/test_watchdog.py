"""Tests for the online invariant watchdog (``repro.obs.watchdog``).

The interesting cases corrupt the authoritative cluster state mid-run —
leak a container onto a node behind the state map's back, double-free one
out of the map — and assert the watchdog fires at the corrupting tick
with a deterministic, actionable diagnosis.
"""

from __future__ import annotations

import json
import subprocess
import sys

import pytest

from repro import SerialScheduler, build_cluster
from repro.cluster.node import Allocation
from repro.cluster.resources import Resource
from repro.obs.events import EventKind
from repro.obs.metrics import Metrics, set_metrics
from repro.obs.trace import MemorySink, Tracer, set_tracer
from repro.obs.watchdog import (
    CHECKS,
    Watchdog,
    WatchdogError,
    watchdog_from_env,
)
from repro.sim import ClusterSimulation, SimConfig
from tests.helpers import make_lra


@pytest.fixture()
def isolate_obs():
    prev_tracer = set_tracer(None)
    prev_metrics = set_metrics(Metrics())
    yield
    set_tracer(prev_tracer)
    set_metrics(prev_metrics)


def _make_sim(watchdog, horizon=20.0):
    topo = build_cluster(6, racks=2, memory_mb=8 * 1024, vcores=8)
    sim = ClusterSimulation(
        topo, SerialScheduler(),
        config=SimConfig(scheduling_interval_s=5.0, horizon_s=horizon),
        watchdog=watchdog,
    )
    sim.submit_lra(make_lra("web", containers=2, tags={"web"}), at=1.0)
    return sim


def _leak_container(sim, node_index=0, container_id="leak-1"):
    """Allocate directly on a node, bypassing the cluster state map."""
    node = sim.state.topology.node(sim.state.topology.node_ids()[node_index])
    node.allocate(
        Allocation(container_id, Resource(memory_mb=256, vcores=1),
                   frozenset(), "ghost")
    )
    return node.node_id


class TestCleanRuns:
    def test_no_trips_on_healthy_simulation(self, isolate_obs):
        watchdog = Watchdog(mode="warn")
        sim = _make_sim(watchdog)
        sim.run(20.0)
        assert watchdog.trips == []
        assert watchdog.checks_run > 0

    def test_checks_catalogue(self):
        assert CHECKS == (
            "node_conservation",
            "container_conservation",
            "violation_consistency",
            "fingerprint",
        )


class TestContainerLeak:
    def test_leak_trips_at_corrupting_tick_naming_node_and_container(
        self, isolate_obs
    ):
        watchdog = Watchdog(mode="warn")
        sim = _make_sim(watchdog)
        leaked_node = {}
        sim.engine.schedule_at(
            7.0, lambda _e: leaked_node.setdefault("id", _leak_container(sim))
        )
        sim.run(20.0)
        checks = {trip.check for trip in watchdog.trips}
        assert "container_conservation" in checks
        trip = next(
            t for t in watchdog.trips if t.check == "container_conservation"
        )
        # Heartbeats run every 1.0s, so the first check after the t=7.0
        # corruption is the t=7.0 heartbeat itself (corrupting event was
        # scheduled first, same tick).
        assert trip.time == 7.0
        assert trip.diagnosis["leaked"] == [["leak-1", leaked_node["id"]]]
        # The independently recomputed fingerprint diverges too.
        assert "fingerprint" in checks

    def test_consecutive_identical_diagnosis_reported_once(self, isolate_obs):
        watchdog = Watchdog(mode="warn")
        sim = _make_sim(watchdog)
        sim.engine.schedule_at(7.0, lambda _e: _leak_container(sim))
        sim.run(20.0)
        conservation_trips = [
            t for t in watchdog.trips if t.check == "container_conservation"
        ]
        # ~13 more heartbeats see the same leak; only the first is recorded.
        assert len(conservation_trips) == 1


class TestDoubleFree:
    def test_missing_container_diagnosed(self, isolate_obs):
        watchdog = Watchdog(mode="warn")
        sim = _make_sim(watchdog)

        def double_free(_engine):
            # Remove a placed container from its node but leave the state
            # map entry: the node side forgot an allocation the cluster
            # still believes in.
            container_id, placed = next(iter(sim.state.containers.items()))
            node = sim.state.topology.node(placed.node_id)
            node.release(container_id)

        sim.engine.schedule_at(8.0, double_free)
        sim.run(20.0)
        trip = next(
            t for t in watchdog.trips if t.check == "container_conservation"
        )
        assert trip.time == 8.0
        assert len(trip.diagnosis["missing"]) == 1
        # node-side release also breaks per-node resource accounting? No —
        # release restores free correctly; only the cross-map check fires.
        assert trip.diagnosis["state_containers"] == (
            trip.diagnosis["node_containers"] + 1
        )


class TestTripEvent:
    def test_trip_event_emitted_and_canonical_deterministic(self, isolate_obs):
        def run_once():
            sink = MemorySink()
            set_tracer(Tracer([sink]))
            set_metrics(Metrics())
            watchdog = Watchdog(mode="warn")
            sim = _make_sim(watchdog)
            sim.engine.schedule_at(7.0, lambda _e: _leak_container(sim))
            sim.run(20.0)
            return [
                e.canonical_json() for e in sink.events
                if e.kind == EventKind.WATCHDOG_TRIP
            ]

        first = run_once()
        second = run_once()
        assert first, "expected watchdog.trip events"
        payload = json.loads(first[0])["data"]
        assert payload["check"] == "container_conservation"
        assert payload["leaked"][0][0] == "leak-1"
        assert first == second

    def test_trips_counted_in_metrics(self, isolate_obs):
        metrics = Metrics()
        set_metrics(metrics)
        watchdog = Watchdog(mode="warn")
        sim = _make_sim(watchdog)
        sim.engine.schedule_at(7.0, lambda _e: _leak_container(sim))
        sim.run(20.0)
        counts = metrics.snapshot()["counters"]["watchdog_trips_total"]
        assert counts["check=container_conservation"] >= 1


class TestAbortMode:
    def test_abort_raises_watchdog_error(self, isolate_obs):
        watchdog = Watchdog(mode="abort")
        sim = _make_sim(watchdog)
        sim.engine.schedule_at(7.0, lambda _e: _leak_container(sim))
        with pytest.raises(WatchdogError) as excinfo:
            sim.run(20.0)
        assert excinfo.value.trip.time == 7.0
        assert "leak-1" in str(excinfo.value)

    def test_cli_abort_exits_nonzero(self, tmp_path):
        """End-to-end: a corrupted simulate run under --watchdog abort must
        exit non-zero and print the diagnosis (run in a subprocess so the
        exit code is the real contract)."""
        script = tmp_path / "corrupt_run.py"
        script.write_text(
            """
import sys
from repro.cli import main
import repro.sim.cluster_sim as cluster_sim

original_init = cluster_sim.ClusterSimulation.__init__

def corrupting_init(self, *args, **kwargs):
    original_init(self, *args, **kwargs)
    from repro.cluster.node import Allocation
    from repro.cluster.resources import Resource
    def corrupt(_engine):
        node = self.state.topology.node(self.state.topology.node_ids()[0])
        node.allocate(Allocation("leak-1", Resource(memory_mb=256, vcores=1),
                                 frozenset(), "ghost"))
    self.engine.schedule_at(5.0, corrupt)

cluster_sim.ClusterSimulation.__init__ = corrupting_init
sys.exit(main(["simulate", "--nodes", "8", "--horizon", "15",
               "--lras", "1", "--tasks", "5", "--watchdog", "abort"]))
"""
        )
        result = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True, text=True, timeout=120,
        )
        assert result.returncode == 1
        assert "watchdog tripped" in result.stderr
        assert "leak-1" in result.stderr

    def test_warn_mode_keeps_running(self, isolate_obs):
        watchdog = Watchdog(mode="warn")
        sim = _make_sim(watchdog)
        sim.engine.schedule_at(7.0, lambda _e: _leak_container(sim))
        final = sim.run(20.0)
        assert final == 20.0
        assert watchdog.trips


class TestNodeConservation:
    def test_direct_free_tamper_detected(self, isolate_obs):
        watchdog = Watchdog(mode="warn")
        sim = _make_sim(watchdog)

        def tamper(_engine):
            node = sim.state.topology.node(sim.state.topology.node_ids()[1])
            node._free = Resource(
                memory_mb=node._free.memory_mb - 512, vcores=node._free.vcores
            )

        sim.engine.schedule_at(6.0, tamper)
        sim.run(20.0)
        trip = next(
            t for t in watchdog.trips if t.check == "node_conservation"
        )
        assert trip.time == 6.0
        assert trip.diagnosis["free_memory_mb"] == (
            trip.diagnosis["expected_free_memory_mb"] - 512
        )


class TestEnvConstruction:
    def test_unset_and_falsy_disable(self):
        for value in ({}, {"MEDEA_WATCHDOG": ""}, {"MEDEA_WATCHDOG": "0"},
                      {"MEDEA_WATCHDOG": "off"}):
            assert watchdog_from_env(value) is None

    def test_modes(self):
        assert watchdog_from_env({"MEDEA_WATCHDOG": "1"}).mode == "warn"
        assert watchdog_from_env({"MEDEA_WATCHDOG": "warn"}).mode == "warn"
        assert watchdog_from_env({"MEDEA_WATCHDOG": "abort"}).mode == "abort"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            Watchdog(mode="panic")

    def test_sim_defaults_to_no_watchdog(self, isolate_obs, monkeypatch):
        monkeypatch.delenv("MEDEA_WATCHDOG", raising=False)
        sim = _make_sim(None)
        assert sim.watchdog is None
