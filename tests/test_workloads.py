"""Tests for the synthetic workload generators."""

from __future__ import annotations

import pytest

from repro import ClusterState, Resource, build_cluster
from repro.workloads import (
    GoogleTraceConfig,
    GridMixConfig,
    YCSB_WORKLOADS,
    complexity_population,
    fill_cluster,
    generate_tasks,
    generate_trace,
    hbase_population,
    population_for_utilization,
    workload,
)
from repro.tags import app_id_tag


class TestYcsb:
    def test_six_workloads(self):
        assert sorted(YCSB_WORKLOADS) == ["A", "B", "C", "D", "E", "F"]

    def test_fractions_sum_to_one(self):
        for wl in YCSB_WORKLOADS.values():
            total = (wl.read_fraction + wl.update_fraction
                     + wl.scan_fraction + wl.insert_fraction)
            assert total == pytest.approx(1.0)

    def test_lookup_case_insensitive(self):
        assert workload("a").name == "A"

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            workload("Z")

    def test_scan_heavy_lowest_rate(self):
        assert YCSB_WORKLOADS["E"].base_kops == min(
            wl.base_kops for wl in YCSB_WORKLOADS.values()
        )


class TestGridMix:
    def test_bounded_by_count(self):
        stream = list(generate_tasks(count=50))
        assert len(stream) == 50
        times = [t for t, _ in stream]
        assert times == sorted(times)

    def test_bounded_by_horizon(self):
        stream = list(generate_tasks(GridMixConfig(seed=1), horizon_s=30.0))
        assert all(t <= 30.0 for t, _ in stream)

    def test_unbounded_rejected(self):
        with pytest.raises(ValueError):
            next(generate_tasks())

    def test_deterministic_by_seed(self):
        a = [(t, task.task_id) for t, task in generate_tasks(GridMixConfig(seed=9), count=20)]
        b = [(t, task.task_id) for t, task in generate_tasks(GridMixConfig(seed=9), count=20)]
        # Arrival times AND ids: numbering is per invocation, so repeated
        # same-seed generation is fully reproducible within one process.
        assert a == b

    def test_durations_positive_heavy_tailed(self):
        durations = [task.duration_s for _, task in generate_tasks(count=300)]
        assert all(d > 0 for d in durations)
        assert max(durations) > 4 * (sum(durations) / len(durations))

    def test_fill_cluster_hits_target(self):
        state = ClusterState(build_cluster(20, memory_mb=16 * 1024))
        placed = fill_cluster(state, 0.5)
        assert placed > 0
        assert state.cluster_memory_utilization() == pytest.approx(0.5, abs=0.02)

    def test_fill_cluster_zero(self):
        state = ClusterState(build_cluster(4))
        assert fill_cluster(state, 0.0) == 0

    def test_fill_cluster_bad_fraction(self):
        state = ClusterState(build_cluster(4))
        with pytest.raises(ValueError):
            fill_cluster(state, 1.5)

    def test_fill_marks_short_running(self):
        state = ClusterState(build_cluster(4))
        fill_cluster(state, 0.2)
        assert all(not c.allocation.long_running for c in state.containers.values())


class TestGoogleTrace:
    def test_count_and_ordering(self):
        stream = list(generate_trace(count=200))
        assert len(stream) == 200
        times = [t for t, _ in stream]
        assert times == sorted(times)

    def test_speedup_compresses_time(self):
        slow = list(generate_trace(GoogleTraceConfig(seed=5, speedup=1.0), count=100))
        fast = list(generate_trace(GoogleTraceConfig(seed=5, speedup=200.0), count=100))
        assert fast[-1][0] < slow[-1][0]

    def test_durations_scaled(self):
        fast = [task.duration_s for _, task in
                generate_trace(GoogleTraceConfig(seed=5, speedup=200.0), count=200)]
        assert max(fast) < 60.0  # sub-minute after 200x compression

    def test_sizes_from_catalogue(self):
        for _, task in generate_trace(count=100):
            assert task.resource.memory_mb in (512, 1024, 2048, 4096)


class TestLraPopulations:
    def test_hbase_population_count(self):
        pop = hbase_population(5)
        assert len(pop) == 5
        assert len({r.app_id for r in pop}) == 5

    def test_population_for_utilization_sizing(self):
        topo = build_cluster(100, memory_mb=16 * 1024)
        pop = population_for_utilization(topo, 0.3)
        total = sum(r.total_resource().memory_mb for r in pop)
        cluster = topo.total_capacity().memory_mb
        assert total / cluster == pytest.approx(0.3, abs=0.05)

    def test_population_mixes_bulk_beyond_cap(self):
        """Above the constrained cap, unconstrained bulk LRAs fill the rest
        so the workload stays satisfiable at high utilisation."""
        topo = build_cluster(100, memory_mb=16 * 1024)
        pop = population_for_utilization(topo, 0.9)
        total = sum(r.total_resource().memory_mb for r in pop)
        cluster = topo.total_capacity().memory_mb
        assert total / cluster == pytest.approx(0.9, abs=0.05)
        constrained = [r for r in pop if r.constraints]
        bulk = [r for r in pop if not r.constraints]
        assert bulk, "expected unconstrained bulk LRAs in a 90% population"
        constrained_mb = sum(r.total_resource().memory_mb for r in constrained)
        assert constrained_mb / cluster <= 0.35
        # Interleaved, not phased: a bulk app appears before the last
        # constrained app.
        kinds = ["hb" if r.constraints else "bulk" for r in pop]
        assert "bulk" in kinds[: len(kinds) // 2]

    def test_population_bad_fraction(self):
        topo = build_cluster(10)
        with pytest.raises(ValueError):
            population_for_utilization(topo, 0.0)

    def test_complexity_one_has_no_inter_constraints(self):
        pop = complexity_population(2, 1)
        assert len(pop) == 2
        for req in pop:
            assert len(req.constraints) == 1  # only the local cap

    def test_complexity_links_apps(self):
        pop = complexity_population(1, 4, seed=3)
        assert len(pop) == 4
        app_ids = [r.app_id for r in pop]
        for i, req in enumerate(pop):
            inter = req.constraints[1]
            target_tags = inter.tag_constraints[0].c_tag.tags
            expected = app_id_tag(app_ids[(i + 1) % 4])
            assert expected in target_tags

    def test_complexity_invalid(self):
        with pytest.raises(ValueError):
            complexity_population(1, 0)
